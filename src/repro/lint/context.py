"""Parsed-source context shared by the lint rules.

``qbss-lint`` is a *project* linter: several rules (registry conformance,
cache purity) need to see every module at once, so the engine parses the
whole tree into :class:`SourceModule` objects up front and hands rules a
:class:`LintContext` with the lot.

:class:`ImportMap` resolves local names back to their dotted origins
(``np.random.rand`` → ``numpy.random.rand``) so rules match on what a
call *is*, not on how the file happened to spell it.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from .config import LintConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .flow import ProjectFlow


def derive_module_name(path: Path) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    ``.../src/repro/engine/cache.py`` → ``repro.engine.cache``; fixture
    trees only need a ``repro/`` directory component to be scoped the
    same way the real tree is.  Files outside any ``repro`` package keep
    their bare stem.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    anchors = [i for i, part in enumerate(parts) if part == "repro"]
    if anchors:
        return ".".join(parts[anchors[-1] :])
    return parts[-1] if parts else str(path)


class ImportMap:
    """Local alias → dotted origin, built from a module's import statements.

    Handles ``import x [as a]``, ``from pkg import name [as a]`` and
    relative imports (resolved against the module's own dotted name), so
    :meth:`origin` can report e.g. ``numpy.random.default_rng`` for a
    call spelled ``rng_mod.default_rng`` under ``import numpy.random as
    rng_mod``.
    """

    def __init__(self, tree: ast.Module, module_name: str) -> None:
        self.aliases: dict[str, str] = {}
        package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor_parts = module_name.split(".")
                    # level=1 is the containing package; each extra level
                    # climbs one more package up.
                    anchor_parts = anchor_parts[: len(anchor_parts) - node.level]
                    anchor = ".".join(anchor_parts)
                    base = f"{anchor}.{base}" if base else anchor
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{base}.{alias.name}" if base else alias.name
        del package

    def origin(self, node: ast.expr) -> str | None:
        """Dotted origin of a Name/Attribute chain, or ``None`` if unknown."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.origin(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


@dataclass
class SourceModule:
    """One parsed source file: path, dotted name, AST, raw lines."""

    path: Path
    rel_path: str
    module: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    _imports: ImportMap | None = None

    @classmethod
    def parse(cls, path: Path, *, root: Path | None = None) -> SourceModule:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            rel_path=relativize(path, root),
            module=derive_module_name(path),
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    @property
    def imports(self) -> ImportMap:
        if self._imports is None:
            self._imports = ImportMap(self.tree, self.module)
        return self._imports

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_package(self, *packages: str) -> bool:
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )


def relativize(path: Path, root: Path | None) -> str:
    """POSIX path relative to ``root`` (or the cwd) when possible."""
    base = root if root is not None else Path.cwd()
    try:
        rel = os.path.relpath(path, start=base)
    except ValueError:  # pragma: no cover - different drive on Windows
        return path.as_posix()
    if rel.startswith(".."):
        return path.as_posix()
    return Path(rel).as_posix()


@dataclass
class LintContext:
    """Everything a rule may look at: all parsed modules, by name, plus
    the resolved :class:`~repro.lint.config.LintConfig`."""

    modules: list[SourceModule] = field(default_factory=list)
    config: LintConfig = field(default_factory=lambda: LintConfig())

    def __post_init__(self) -> None:
        self.by_name: dict[str, SourceModule] = {m.module: m for m in self.modules}
        self._flow: ProjectFlow | None = None

    def get(self, module_name: str) -> SourceModule | None:
        return self.by_name.get(module_name)

    @property
    def flow(self) -> ProjectFlow:
        """Lazily built shared call-graph / attribute-flow index."""
        from .flow import ProjectFlow

        if self._flow is None:
            self._flow = ProjectFlow(self)
        return self._flow
