"""The qbss-lint engine: discover, parse, run rules, render.

Flow: collect ``*.py`` files → parse into a :class:`LintContext` → run
each rule's per-module pass then its whole-tree ``finalize`` → drop
inline-suppressed findings → stamp occurrence indices (stable
fingerprints) → partition against the checked-in baseline.  Files that
fail to parse yield a ``QL000`` syntax finding instead of crashing the
run — a tree that does not parse cannot be certified.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .. import __version__ as PACKAGE_VERSION
from .baseline import Baseline
from .config import LintConfig, discover_config
from .context import LintContext, SourceModule, relativize
from .findings import (
    LINT_FORMAT_VERSION,
    REPORT_KIND,
    SEVERITY_ERROR,
    Finding,
    sort_key,
)
from .rules import Rule, select_rules
from .suppress import Suppressions

#: Rule ID reserved for files the engine itself cannot parse.
SYNTAX_RULE_ID = "QL000"


@dataclass
class LintRun:
    """Outcome of one lint pass (before baseline partitioning)."""

    files: int
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    rules: list[Rule] = field(default_factory=list)

    def partition(self, baseline: Baseline) -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, baselined)."""
        new = [f for f in self.findings if not baseline.contains(f)]
        old = [f for f in self.findings if baseline.contains(f)]
        return new, old


def collect_files(paths: list[Path]) -> list[Path]:
    """Python files under ``paths`` (files or directories), sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def lint_paths(
    paths: list[Path],
    *,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
    root: Path | None = None,
    config: LintConfig | None = None,
    restrict: set[str] | None = None,
) -> LintRun:
    """Lint every Python file under ``paths`` and return the findings.

    ``config`` overrides the lint configuration; by default a
    ``.qbss-lint.json`` at ``root`` (or the cwd) is discovered, falling
    back to the built-in defaults.

    ``restrict`` (``--changed``) filters the *reported* findings to the
    given relative paths.  The whole tree is still parsed and analyzed —
    the cross-module rules need full project context — so a change in
    one file that breaks an invariant anchored in it is still caught,
    while pre-existing findings elsewhere stay out of the report.
    """
    if config is None:
        config = discover_config(root)
    files = collect_files(paths)
    modules: list[SourceModule] = []
    raw: list[Finding] = []
    for path in files:
        try:
            modules.append(SourceModule.parse(path, root=root))
        except SyntaxError as exc:
            raw.append(
                Finding(
                    rule=SYNTAX_RULE_ID,
                    severity=SEVERITY_ERROR,
                    path=relativize(path, root),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1 if exc.offset else 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    ctx = LintContext(modules, config=config)
    rules = select_rules(select, ignore)
    for rule in rules:
        for module in ctx.modules:
            raw.extend(rule.check_module(module, ctx))
        raw.extend(rule.finalize(ctx))

    suppressions = {m.rel_path: Suppressions.scan(m.source) for m in ctx.modules}
    kept: list[Finding] = []
    dropped: list[Finding] = []
    for finding in sorted(raw, key=sort_key):
        supp = suppressions.get(finding.path)
        if supp is not None and supp.is_suppressed(finding.rule, finding.line):
            dropped.append(finding)
        else:
            kept.append(finding)
    if restrict is not None:
        kept = [f for f in kept if f.path in restrict]
        dropped = [f for f in dropped if f.path in restrict]

    return LintRun(
        files=len(files),
        findings=_stamp_occurrences(kept),
        suppressed=_stamp_occurrences(dropped),
        rules=rules,
    )


def _stamp_occurrences(findings: list[Finding]) -> list[Finding]:
    """Index repeated (rule, path, snippet) triples so fingerprints differ."""
    counts: Counter[tuple[str, str, str]] = Counter()
    stamped = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        stamped.append(
            Finding(
                rule=finding.rule,
                severity=finding.severity,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                snippet=finding.snippet,
                occurrence=counts[key],
            )
        )
        counts[key] += 1
    return stamped


# -- rendering ----------------------------------------------------------------------


def render_text(
    run: LintRun,
    new: list[Finding],
    baselined: list[Finding],
    *,
    show_suppressed: bool = False,
) -> str:
    lines = [f.render() for f in new]
    if baselined:
        lines.extend(f"{f.render()} [baselined]" for f in baselined)
    if show_suppressed:
        lines.extend(f"{f.render()} [suppressed]" for f in run.suppressed)
    lines.append(
        f"qbss-lint: {len(new)} new, {len(baselined)} baselined, "
        f"{len(run.suppressed)} suppressed across {run.files} files"
    )
    return "\n".join(lines) + "\n"


def render_json(
    run: LintRun,
    new: list[Finding],
    baselined: list[Finding],
    *,
    show_suppressed: bool = False,
) -> str:
    def encode(finding: Finding, status: str) -> dict[str, Any]:
        doc = finding.to_dict()
        doc["status"] = status
        return doc

    findings = [encode(f, "new") for f in new]
    findings += [encode(f, "baselined") for f in baselined]
    if show_suppressed:
        findings += [encode(f, "suppressed") for f in run.suppressed]
    findings.sort(key=lambda d: (d["path"], d["line"], d["col"], d["rule"]))
    doc = {
        "version": LINT_FORMAT_VERSION,
        "kind": REPORT_KIND,
        "tool": {"name": "qbss-lint", "package_version": PACKAGE_VERSION},
        "rules": {
            rule.rule_id: {
                "title": rule.title,
                "severity": rule.severity,
                "rationale": rule.rationale,
            }
            for rule in run.rules
        },
        "summary": {
            "files": run.files,
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": len(run.suppressed),
        },
        "findings": findings,
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
