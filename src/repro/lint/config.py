"""Lint configuration: the project-tunable knobs of the rule set.

Most of qbss-lint is deliberately *not* configurable — the invariants it
enforces are the repository's own contracts, and a knob to weaken them
would defeat the gate.  The one legitimate per-project degree of freedom
is QL003's sanctioned environment-variable set: the fault-injection hook
``QBSS_FAULT_PLAN`` is always allowed, and a deployment may sanction
additional keys (e.g. the server's ``QBSS_SERVE_BIND``) without
weakening worker-body purity for everything else.

Configuration lives in a ``.qbss-lint.json`` file at the lint root::

    {
      "version": 1,
      "sanctioned_env": ["QBSS_SERVE_BIND"]
    }

``sanctioned_env`` is additive — the defaults can never be removed, so a
config file can only *extend* the sanctioned set, not strip the fault
hook out of it.  :func:`discover_config` picks the file up automatically
(``lint_paths`` calls it with the lint root); ``qbss-lint --config``
points at an explicit file or disables discovery with ``none``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Discovered automatically at the lint root.
CONFIG_FILENAME = ".qbss-lint.json"
LINT_CONFIG_VERSION = 1

#: The always-sanctioned environment keys (the fault-injection hook) and
#: the module-constant names that refer to them.
DEFAULT_SANCTIONED_ENV_KEYS = frozenset({"QBSS_FAULT_PLAN"})
DEFAULT_SANCTIONED_ENV_NAMES = frozenset({"FAULT_PLAN_ENV"})


class LintConfigError(ValueError):
    """A malformed lint-config file, with the path in the message."""


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration (defaults always included)."""

    sanctioned_env_keys: frozenset[str] = DEFAULT_SANCTIONED_ENV_KEYS
    sanctioned_env_names: frozenset[str] = DEFAULT_SANCTIONED_ENV_NAMES
    source: str | None = field(default=None, compare=False)


def load_config(path: Path) -> LintConfig:
    """Parse one config file; raises :class:`LintConfigError`."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintConfigError(f"{path}: cannot read lint config: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintConfigError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise LintConfigError(f"{path}: lint config must be a JSON object")
    version = data.get("version")
    if version != LINT_CONFIG_VERSION:
        raise LintConfigError(
            f"{path}: unsupported lint-config version {version!r} "
            f"(expected {LINT_CONFIG_VERSION})"
        )
    unknown = sorted(set(data) - {"version", "sanctioned_env"})
    if unknown:
        raise LintConfigError(
            f"{path}: unknown lint-config key(s): {', '.join(unknown)}"
        )
    extra = data.get("sanctioned_env", [])
    if not isinstance(extra, list) or not all(
        isinstance(key, str) and key for key in extra
    ):
        raise LintConfigError(
            f"{path}: 'sanctioned_env' must be a list of non-empty strings"
        )
    return LintConfig(
        sanctioned_env_keys=DEFAULT_SANCTIONED_ENV_KEYS | frozenset(extra),
        source=str(path),
    )


def discover_config(root: Path | None) -> LintConfig:
    """The config at ``root`` (or cwd) when present, else the defaults."""
    base = root if root is not None else Path.cwd()
    candidate = base / CONFIG_FILENAME
    if candidate.is_file():
        return load_config(candidate)
    return LintConfig()
