"""``qbss-lint`` — the project's static invariant gate.

Exit codes: 0 = no new findings; 1 = new (non-baselined) findings;
2 = usage or I/O error.  ``--write-baseline`` snapshots the current
findings as grandfathered (each entry then needs a human justification
— the project caps the live baseline at five entries).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from .. import __version__ as PACKAGE_VERSION
from .baseline import Baseline, BaselineError
from .config import CONFIG_FILENAME, LintConfig, LintConfigError, load_config
from .engine import LintRun, lint_paths, render_json, render_text
from .rules import all_rules
from .sarif import render_sarif

DEFAULT_BASELINE = ".qbss-lint-baseline.json"
DEFAULT_PATH = "src/repro"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qbss-lint",
        description=(
            "AST-based invariant linter for the QBSS reproduction: "
            "determinism (QL001), registry conformance (QL002), cache-key "
            "purity (QL003), exception hygiene (QL004), float equality "
            "(QL005), versioned IO (QL006), lock discipline (QL007), "
            "lock-order consistency (QL008), blocking-call hygiene "
            "(QL009), resource lifecycle (QL010) and durability ordering "
            "(QL011)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories to lint (default: {DEFAULT_PATH})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "report only findings in files changed since REF (default "
            "HEAD) plus untracked files; the whole tree is still "
            "analyzed for cross-module context"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {PACKAGE_VERSION}",
    )
    parser.add_argument(
        "--config",
        default=None,
        help=(
            f"lint-config file (default: {CONFIG_FILENAME} in the cwd when "
            "it exists; 'none' disables discovery)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            f"baseline file (default: {DEFAULT_BASELINE} when it exists; "
            "'none' disables)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include inline-suppressed findings in the report",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the rule catalog and exit",
    )
    return parser


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _resolve_baseline_path(arg: str | None) -> Path | None:
    if arg is None:
        default = Path(DEFAULT_BASELINE)
        return default if default.exists() else None
    if arg.lower() == "none":
        return None
    return Path(arg)


def _changed_paths(ref: str) -> set[str]:
    """Repo-relative ``*.py`` paths changed since ``ref``, plus untracked.

    Paths come back relative to the git worktree root, which matches the
    engine's ``rel_path`` convention when qbss-lint runs from the
    repository root (the documented usage).  Raises ``RuntimeError``
    when git is unavailable or ``ref`` does not resolve.
    """
    changed: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", "--diff-filter=d", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            detail = proc.stderr.strip() or f"`{' '.join(cmd)}` failed"
            raise RuntimeError(f"--changed: {detail}")
        changed.update(
            line.strip()
            for line in proc.stdout.splitlines()
            if line.strip().endswith(".py")
        )
    return changed


def _emit(text: str, output: Path | None) -> None:
    if output is None:
        sys.stdout.write(text)
    else:
        output.write_text(text, encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id} [{rule.severity}] {rule.title}")
            print(f"    {rule.rationale}")
        return 0

    paths = list(args.paths)
    if not paths:
        default = Path(DEFAULT_PATH)
        if not default.exists():
            parser.error(
                f"no paths given and default {DEFAULT_PATH!r} does not exist "
                "(run from the repository root or pass paths)"
            )
        paths = [default]

    config: LintConfig | None = None
    if args.config is not None:
        if args.config.lower() == "none":
            config = LintConfig()
        else:
            try:
                config = load_config(Path(args.config))
            except LintConfigError as exc:
                print(f"qbss-lint: error: {exc}", file=sys.stderr)
                return 2

    restrict: set[str] | None = None
    if args.changed is not None:
        try:
            restrict = _changed_paths(args.changed)
        except RuntimeError as exc:
            print(f"qbss-lint: error: {exc}", file=sys.stderr)
            return 2

    try:
        run: LintRun = lint_paths(
            paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            config=config,
            restrict=restrict,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"qbss-lint: error: {exc}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline_path(args.baseline)
    if args.write_baseline:
        target = baseline_path or Path(args.baseline or DEFAULT_BASELINE)
        Baseline.write(target, run.findings)
        print(
            f"qbss-lint: wrote {len(run.findings)} entries to {target} "
            "(add a justification to each before committing)",
            file=sys.stderr,
        )
        return 0

    try:
        baseline = Baseline.load(baseline_path)
    except BaselineError as exc:
        print(f"qbss-lint: error: {exc}", file=sys.stderr)
        return 2

    new, baselined = run.partition(baseline)
    renderer = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    _emit(
        renderer(run, new, baselined, show_suppressed=args.show_suppressed),
        args.output,
    )
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - console-script entry
    sys.exit(main())
