"""SARIF 2.1.0 rendering for qbss-lint.

One ``run`` per invocation, one ``result`` per finding.  Baselined
findings are emitted with a ``suppressions`` entry (kind ``external``,
the checked-in baseline) so GitHub code scanning shows them as
suppressed instead of re-opening grandfathered alerts; inline-suppressed
findings (``--show-suppressed``) use kind ``inSource``.  The engine's
stable fingerprint rides along as a ``partialFingerprints`` key, which
keeps alert identity stable under line-number drift.
"""

from __future__ import annotations

import json
from typing import Any

from .. import __version__ as PACKAGE_VERSION
from .engine import LintRun
from .findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: partialFingerprints key carrying the engine's baseline fingerprint.
FINGERPRINT_KEY = "qbssLintFingerprint/v1"

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: Any) -> dict[str, Any]:
    return {
        "id": rule.rule_id,
        "name": rule.__class__.__name__,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")
        },
    }


def _result(finding: Finding, *, suppression: str | None) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
        "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint},
    }
    if suppression is not None:
        doc["suppressions"] = [{"kind": suppression}]
    return doc


def render_sarif(
    run: LintRun,
    new: list[Finding],
    baselined: list[Finding],
    *,
    show_suppressed: bool = False,
) -> str:
    results = [_result(f, suppression=None) for f in new]
    results += [_result(f, suppression="external") for f in baselined]
    if show_suppressed:
        results += [_result(f, suppression="inSource") for f in run.suppressed]
    results.sort(
        key=lambda r: (
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
            r["locations"][0]["physicalLocation"]["region"]["startLine"],
            r["locations"][0]["physicalLocation"]["region"]["startColumn"],
            r["ruleId"],
        )
    )
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "qbss-lint",
                        "version": PACKAGE_VERSION,
                        "rules": [_rule_descriptor(r) for r in run.rules],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
