"""qbss-lint: AST-based static enforcement of the repo's own invariants.

The reproduction's core claims (paper-bound ratio verdicts,
byte-identical serial/parallel/cached replays, trace-count == footer
equality) rest on contracts that used to be enforced only dynamically,
test by test.  This package checks them at parse time:

==== =========================================================
ID   Contract
==== =========================================================
QL001 determinism — no wall clocks / global RNG in replayable code
QL002 registry conformance — keyword-only ``(qi, *, ...)`` runners
QL003 cache-key purity — no ambient reads in worker bodies
QL004 exception hygiene — never swallow BaseException
QL005 float equality — ``math.isclose`` in verdict code
QL006 versioned IO — every document kind declares a version
QL007 lock discipline — guarded state mutates only under the lock
QL008 lock-order consistency — the acquisition graph is acyclic
QL009 blocking-call hygiene — no unbounded blocking on main
QL010 resource lifecycle — sockets/files/pools close on every path
QL011 durability ordering — fsync dominates publish/ack
==== =========================================================

QL007–QL011 share the project-wide call-graph / attribute-flow layer in
:mod:`repro.lint.flow`; QL008's static lock graph is cross-validated at
runtime by the opt-in :mod:`repro.lint.lockwatch` sanitizer.

Use the ``qbss-lint`` console script (see ``docs/static-analysis.md``)
or the :func:`lint_paths` API.  Inline suppressions
(``# qbss-lint: disable=QL001``) and a checked-in baseline file handle
the rare justified exception.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry
from .config import LintConfig, LintConfigError, discover_config, load_config
from .engine import LintRun, collect_files, lint_paths, render_json, render_text
from .findings import LINT_FORMAT_VERSION, Finding
from .rules import Rule, all_rules, select_rules
from .sarif import render_sarif

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LINT_FORMAT_VERSION",
    "LintConfig",
    "LintConfigError",
    "LintRun",
    "Rule",
    "all_rules",
    "collect_files",
    "discover_config",
    "lint_paths",
    "load_config",
    "render_json",
    "render_sarif",
    "render_text",
    "select_rules",
]
