"""QL010-QL011 -- resource lifecycle and durability-ordering contracts.

Both rules are scoped to ``repro.serve`` and ``repro.engine``: the
serving daemon and the execution backends are where sockets, journals
and pools live, and where the crash-safety contract (fsync before
publish/ack) is load-bearing.

- **QL010 resource lifecycle**: a socket / file / pool bound to a local
  name must be closed on every path -- via ``with``, a ``finally``
  close, or by escaping the function (returned, yielded, stored on an
  object, or handed to another call, which transfers ownership).
- **QL011 durability ordering**: on every control-flow path, a handle
  that was written must be ``flush()``-ed and ``os.fsync()``-ed before
  any publication sink (``os.replace``/``os.rename``, a path's
  ``.replace()``, or a socket ack).  ``return`` is *not* a sink: the
  admission journal deliberately fsyncs only admission records, and
  that policy stays expressible.

The analysis is a per-function abstract interpretation: branches fork
the handle state and re-join with the least-durable outcome, so "one
branch skipped the fsync" is caught even when the straight-line path is
correct.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from dataclasses import dataclass, field

from .context import LintContext, SourceModule
from .findings import SEVERITY_ERROR, Finding
from .flow import SOCKET_FACTORIES, dotted_key
from .rules import Rule, walk_functions

_SCOPE_PACKAGES = ("repro.serve", "repro.engine")

_POOL_FACTORIES = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
}

#: ``finally``-block methods that count as releasing the resource.
_CLOSERS = {"close", "shutdown", "terminate", "__exit__"}


def _in_scope(module: SourceModule) -> bool:
    return module.in_package(*_SCOPE_PACKAGES)


# -- QL010 --------------------------------------------------------------------


def _opener_kind(call: ast.Call, module: SourceModule) -> str | None:
    origin = module.imports.origin(call.func)
    if origin in SOCKET_FACTORIES:
        return "socket"
    if origin in _POOL_FACTORIES:
        return "pool"
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open" and origin is None:
        return "file"
    if isinstance(func, ast.Attribute) and func.attr in ("open", "makefile"):
        return "file"
    return None


class ResourceLifecycleRule(Rule):
    rule_id = "QL010"
    title = "resource lifecycle: sockets/files/pools close on every path"
    severity = SEVERITY_ERROR
    rationale = (
        "A leaked socket or journal handle in the daemon accumulates for "
        "the life of the process; an exception between open and close "
        "leaks silently.  Every opened resource is either managed by "
        "`with`, closed in `finally`, or handed off to an owner."
    )

    def check_module(
        self, module: SourceModule, ctx: LintContext
    ) -> Iterable[Finding]:
        if not _in_scope(module):
            return
        for fn in walk_functions(module.tree):
            openers: list[tuple[str, ast.Call, str]] = []
            for sub in ast.walk(fn):
                if not (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and isinstance(sub.value, ast.Call)
                ):
                    continue
                kind = _opener_kind(sub.value, module)
                if kind is not None:
                    openers.append((sub.targets[0].id, sub.value, kind))
            if not openers:
                continue
            released = self._released_names(fn)
            for name, call, kind in openers:
                if name not in released:
                    yield self.finding(
                        module,
                        call,
                        f"{kind} `{name}` is opened but not closed on every "
                        "path; manage it with `with`, close it in "
                        "`finally`, or hand it to an owner",
                    )

    def _released_names(self, fn: ast.AST) -> set[str]:
        """Names whose resource is managed, closed-in-finally, or escapes."""
        released: set[str] = set()
        for sub in ast.walk(fn):
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    for name_node in ast.walk(item.context_expr):
                        if isinstance(name_node, ast.Name):
                            released.add(name_node.id)
            elif isinstance(sub, ast.Try):
                for stmt in sub.finalbody:
                    for call in ast.walk(stmt):
                        if (
                            isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr in _CLOSERS
                            and isinstance(call.func.value, ast.Name)
                        ):
                            released.add(call.func.value.id)
            elif isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
                if sub.value is not None:
                    for name_node in ast.walk(sub.value):
                        if isinstance(name_node, ast.Name):
                            released.add(name_node.id)
            elif isinstance(sub, ast.Call):
                # Ownership transfer: the handle passed as an argument.
                for arg in [*sub.args, *[kw.value for kw in sub.keywords]]:
                    for name_node in ast.walk(arg):
                        if isinstance(name_node, ast.Name):
                            released.add(name_node.id)
            elif isinstance(sub, ast.Assign):
                # Stored on an object / container: someone else owns it.
                if any(
                    not isinstance(t, ast.Name) for t in sub.targets
                ):
                    for name_node in ast.walk(sub.value):
                        if isinstance(name_node, ast.Name):
                            released.add(name_node.id)
        return released


# -- QL011 --------------------------------------------------------------------

_DIRTY = "dirty"
_FLUSHED = "flushed"
_SYNCED = "synced"
_CLEAN = "clean"

_State = dict[str, str]


def _merge(states: list[_State | None]) -> _State:
    live = [s for s in states if s is not None]
    if not live:
        return {}
    keys: set[str] = set()
    for s in live:
        keys |= set(s)
    out: _State = {}
    for key in keys:
        vals = {s.get(key, _CLEAN) for s in live}
        if _DIRTY in vals:
            out[key] = _DIRTY
        elif _FLUSHED in vals:
            out[key] = _FLUSHED
        elif _SYNCED in vals:
            out[key] = _SYNCED
        else:
            out[key] = _CLEAN
    return out


class DurabilityOrderRule(Rule):
    rule_id = "QL011"
    title = "durability ordering: fsync dominates publish/ack"
    severity = SEVERITY_ERROR
    rationale = (
        "The crash-safety contract: bytes are only durable after "
        "flush()+os.fsync(), so publishing a file (os.replace) or acking "
        "a client before the fsync means a crash can acknowledge work "
        "that never hit disk and break replay identity."
    )

    def check_module(
        self, module: SourceModule, ctx: LintContext
    ) -> Iterable[Finding]:
        if not _in_scope(module):
            return
        for fn in walk_functions(module.tree):
            scan = _DurabilityScan(self, module)
            scan.block(list(fn.body), {})
            yield from scan.findings


@dataclass
class _DurabilityScan:
    """Branch-sensitive handle-state walk over one function body."""

    rule: Rule
    module: SourceModule
    findings: list[Finding] = field(default_factory=list)
    pathlike: set[str] = field(default_factory=set)
    aliases: dict[str, str] = field(default_factory=dict)

    def block(self, stmts: list[ast.stmt], state: _State) -> _State | None:
        cur: _State | None = state
        for stmt in stmts:
            if cur is None:
                return None
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt, state: _State) -> _State | None:
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
            # Deliberately not sinks: conditional-durability policies
            # (journal fsyncs only admission records) stay expressible.
            return None
        if isinstance(stmt, ast.If):
            taken = self.block(stmt.body, dict(state))
            skipped = self.block(stmt.orelse, dict(state))
            if taken is None and skipped is None:
                return None
            return _merge([taken, skipped])
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            once = self.block(stmt.body, dict(state))
            return _merge([once, dict(state)])
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Call)
                    and item.optional_vars is not None
                    and isinstance(
                        item.optional_vars, (ast.Name, ast.Attribute)
                    )
                    and _is_write_open(expr)
                ):
                    key = dotted_key(item.optional_vars)
                    if key is not None:
                        state[key] = _CLEAN
            return self.block(stmt.body, state)
        if isinstance(stmt, ast.Try):
            pre = dict(state)
            body_state = self.block(stmt.body, dict(state))
            if body_state is not None:
                body_state = self.block(stmt.orelse, body_state)
            handler_states = [
                self.block(handler.body, dict(pre))
                for handler in stmt.handlers
            ]
            outcomes = [body_state, *handler_states]
            merged = _merge(outcomes)
            alive = any(outcome is not None for outcome in outcomes)
            if stmt.finalbody:
                final_state = self.block(stmt.finalbody, merged)
                if final_state is None:
                    return None
                merged = final_state
            return merged if alive else None
        self._leaf(stmt, state)
        return state

    def _leaf(self, stmt: ast.stmt, state: _State) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            key = dotted_key(stmt.targets[0])
            value = stmt.value
            if key is not None:
                if isinstance(value, ast.Call) and _is_write_open(value):
                    state[key] = _CLEAN
                    return
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "fileno"
                ):
                    handle = dotted_key(value.func.value)
                    if handle is not None and handle in state:
                        self.aliases[key] = handle
                        return
                if _is_pathlike_expr(value, self.module, self.pathlike):
                    self.pathlike.add(key)
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                self._call(sub, state)

    def _call(self, call: ast.Call, state: _State) -> None:
        func = call.func
        origin = self.module.imports.origin(func)
        if origin in ("os.replace", "os.rename"):
            self._sink(call, state, origin)
            return
        if isinstance(func, ast.Name) and func.id == "send_frame":
            self._sink(call, state, "send_frame()")
            return
        if isinstance(func, ast.Attribute):
            receiver = dotted_key(func.value)
            attr = func.attr
            if receiver is not None and receiver in state:
                if attr in ("write", "writelines"):
                    state[receiver] = _DIRTY
                elif attr == "flush" and state[receiver] == _DIRTY:
                    state[receiver] = _FLUSHED
            if attr == "replace" and receiver in self.pathlike:
                self._sink(call, state, f"{receiver}.replace()")
            elif attr == "sendall":
                self._sink(call, state, f"socket {attr}()")
        if origin == "os.fsync" and call.args:
            for sub in ast.walk(call.args[0]):
                if not isinstance(sub, (ast.Name, ast.Attribute)):
                    continue
                key = dotted_key(sub)
                if key is None:
                    continue
                handle = self.aliases.get(key, key)
                if handle in state:
                    state[handle] = _SYNCED

    def _sink(self, call: ast.Call, state: _State, desc: str) -> None:
        for handle in sorted(state):
            if state[handle] in (_DIRTY, _FLUSHED):
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        call,
                        f"`{handle}` is written but not fsynced before "
                        f"{desc}; flush()+os.fsync() must precede every "
                        "publish/ack (crash-safety contract)",
                    )
                )
                # Report once per handle per path.
                state[handle] = _SYNCED


def _is_write_open(call: ast.Call) -> bool:
    func = call.func
    mode_expr: ast.expr | None = None
    if isinstance(func, ast.Name) and func.id == "open":
        if len(call.args) >= 2:
            mode_expr = call.args[1]
    elif isinstance(func, ast.Attribute) and func.attr == "open":
        if len(call.args) >= 1:
            mode_expr = call.args[0]
    else:
        return False
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_expr = kw.value
    if not (
        isinstance(mode_expr, ast.Constant)
        and isinstance(mode_expr.value, str)
    ):
        return False
    return any(flag in mode_expr.value for flag in "wax+")


def _is_pathlike_expr(
    value: ast.expr, module: SourceModule, pathlike: set[str]
) -> bool:
    if isinstance(value, ast.Call):
        if isinstance(value.func, ast.Attribute) and value.func.attr in (
            "with_suffix",
            "with_name",
            "joinpath",
        ):
            return True
        if module.imports.origin(value.func) == "pathlib.Path":
            return True
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Div):
        return True
    if isinstance(value, ast.Name) and value.id in pathlike:
        return True
    return False
