"""Opt-in runtime lock-order sanitizer (the dynamic half of QL008).

The static lock-acquisition graph (QL008) over-approximates: it follows
every candidate call edge and cannot see dynamically chosen paths.
``lockwatch`` closes the loop from the other side: production code
constructs its locks through the :func:`new_lock` / :func:`new_rlock` /
:func:`new_condition` seam, and when a :class:`LockWatcher` is installed
those factories return *watched* wrappers that record the actual
acquisition order per thread.  With no watcher installed the factories
return plain ``threading`` primitives -- zero overhead, no monkeypatching.

A watcher accumulates:

- the observed edge set ``(outer lock, inner lock)`` with a sample
  acquisition count per edge;
- lock-order cycles over that edge set (:meth:`LockWatcher.cycles`);
- hold-time violations when ``max_hold_ms`` is set (conditions are
  exempt: a ``Condition.wait`` releases the lock while blocked, so wall
  time under a condition is not hold time).

:meth:`LockWatcher.check` raises :class:`LockOrderError` on any cycle or
hold-time violation; the test suites install a session watcher when
``QBSS_LOCKWATCH=1`` and check it at teardown, so the serve / backends /
journal suites double as lock-order chaos runs.

Lock names follow the static rule's convention -- ``ClassName.attr``
(e.g. ``AdmissionQueue._cond``) -- so the observed graph and QL008's
static graph are directly comparable.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from types import TracebackType
from typing import Any


class LockOrderError(RuntimeError):
    """Observed lock-order cycle or hold-time violation."""


class LockWatcher:
    """Records per-thread lock acquisition order and hold times.

    ``max_hold_ms`` (optional) flags any non-condition lock held longer
    than that many milliseconds.  ``clock`` is injectable so tests can
    drive hold times deterministically.
    """

    def __init__(
        self,
        *,
        max_hold_ms: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_hold_ms = max_hold_ms
        self._clock = clock
        self._mu = threading.Lock()
        #: (outer name, inner name) -> observation count.
        self._edges: dict[tuple[str, str], int] = {}
        self._hold_violations: list[tuple[str, float]] = []
        self._tls = threading.local()

    # -- recording (called by the watched wrappers) ---------------------------

    def _stack(self) -> list[tuple[str, float]]:
        stack: list[tuple[str, float]] | None = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def note_acquired(self, name: str) -> None:
        stack = self._stack()
        new_edges = [
            (held, name) for held, _since in stack if held != name
        ]
        stack.append((name, self._clock()))
        if new_edges:
            with self._mu:
                for edge in new_edges:
                    self._edges[edge] = self._edges.get(edge, 0) + 1

    def note_released(self, name: str, *, is_condition: bool = False) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] != name:
                continue
            _name, since = stack.pop(i)
            held_ms = (self._clock() - since) * 1000.0
            if (
                self.max_hold_ms is not None
                and not is_condition
                and held_ms > self.max_hold_ms
            ):
                with self._mu:
                    self._hold_violations.append((name, held_ms))
            return

    # -- inspection -----------------------------------------------------------

    def edges(self) -> set[tuple[str, str]]:
        with self._mu:
            return set(self._edges)

    def edge_counts(self) -> dict[tuple[str, str], int]:
        with self._mu:
            return dict(self._edges)

    def hold_violations(self) -> list[tuple[str, float]]:
        with self._mu:
            return list(self._hold_violations)

    def cycles(self) -> list[list[str]]:
        """Lock-order cycles in the observed edge set (sorted SCCs)."""
        return find_cycles(self.edges())

    def check(self) -> None:
        """Raise :class:`LockOrderError` on any cycle or hold violation."""
        problems: list[str] = []
        for cycle in self.cycles():
            path = " -> ".join([*cycle, cycle[0]])
            problems.append(f"lock-order cycle observed: {path}")
        for name, held_ms in self.hold_violations():
            problems.append(
                f"lock {name} held {held_ms:.1f} ms "
                f"(limit {self.max_hold_ms} ms)"
            )
        if problems:
            raise LockOrderError("; ".join(problems))


def find_cycles(edges: set[tuple[str, str]]) -> list[list[str]]:
    """Non-trivial strongly connected components of a lock-order graph.

    Shared by the runtime watcher and the QL008 static rule so both
    report cycles over identical semantics.  Each cycle is returned as
    a sorted node list; the result is sorted for determinism.
    """
    graph: dict[str, list[str]] = {}
    nodes: set[str] = set()
    for src, dst in edges:
        graph.setdefault(src, []).append(dst)
        nodes.add(src)
        nodes.add(dst)
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    sccs: list[list[str]] = []

    for start in sorted(nodes):
        if start in index:
            continue
        # Iterative Tarjan: (node, iterator position) frames.
        work: list[tuple[str, int]] = [(start, 0)]
        while work:
            node, pos = work.pop()
            if pos == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            children = sorted(graph.get(node, []))
            advanced = False
            for i in range(pos, len(children)):
                child = children[i]
                if child not in index:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    popped = stack.pop()
                    on_stack.discard(popped)
                    component.append(popped)
                    if popped == node:
                        break
                if len(component) > 1 or (node, node) in edges:
                    sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sorted(sccs)


class _WatchedLock:
    """A named ``Lock``/``RLock`` reporting to a :class:`LockWatcher`."""

    def __init__(self, name: str, watcher: LockWatcher, inner: Any) -> None:
        self.name = name
        self._watcher = watcher
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._watcher.note_acquired(self.name)
        return ok

    def release(self) -> None:
        self._watcher.note_released(self.name)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()


class _WatchedCondition:
    """A named ``Condition`` reporting acquire/release to the watcher.

    ``wait`` / ``notify`` delegate to the wrapped condition; the
    internal release-and-reacquire inside ``wait`` is not re-reported
    (the thread still logically holds its place in the lock order), and
    hold-time accounting excludes conditions entirely.
    """

    def __init__(
        self, name: str, watcher: LockWatcher, inner: threading.Condition
    ) -> None:
        self.name = name
        self._watcher = watcher
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._watcher.note_acquired(self.name)
        return ok

    def release(self) -> None:
        self._watcher.note_released(self.name, is_condition=True)
        self._inner.release()

    def __enter__(self) -> bool:
        self._inner.__enter__()
        self._watcher.note_acquired(self.name)
        return True

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._watcher.note_released(self.name, is_condition=True)
        self._inner.__exit__(exc_type, exc, tb)

    def wait(self, timeout: float | None = None) -> bool:
        return self._inner.wait(timeout)

    def wait_for(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> bool:
        return self._inner.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


_active: LockWatcher | None = None
_active_mu = threading.Lock()


def install_watcher(watcher: LockWatcher) -> None:
    """Make ``watcher`` the process-wide watcher for new locks.

    Only locks constructed *after* installation are watched; existing
    primitives are untouched (no monkeypatching).
    """
    global _active
    with _active_mu:
        if _active is not None:
            raise RuntimeError("a LockWatcher is already installed")
        _active = watcher


def uninstall_watcher() -> None:
    global _active
    with _active_mu:
        _active = None


def active_watcher() -> LockWatcher | None:
    return _active


@contextmanager
def watching(watcher: LockWatcher) -> Iterator[LockWatcher]:
    """Install ``watcher`` for the duration of the block."""
    install_watcher(watcher)
    try:
        yield watcher
    finally:
        uninstall_watcher()


def new_lock(name: str) -> threading.Lock | _WatchedLock:
    """A ``threading.Lock``, watched when a watcher is installed."""
    watcher = _active
    if watcher is None:
        return threading.Lock()
    return _WatchedLock(name, watcher, threading.Lock())


def new_rlock(name: str) -> Any:
    """A ``threading.RLock``, watched when a watcher is installed.

    Reentrant re-acquisition records no self-edge: the wrapper only adds
    edges between *distinct* lock names.
    """
    watcher = _active
    if watcher is None:
        return threading.RLock()
    return _WatchedLock(name, watcher, threading.RLock())


def new_condition(name: str) -> threading.Condition | _WatchedCondition:
    """A ``threading.Condition``, watched when a watcher is installed."""
    watcher = _active
    if watcher is None:
        return threading.Condition()
    return _WatchedCondition(name, watcher, threading.Condition())
