"""Finding model shared by every qbss-lint rule.

A :class:`Finding` is one rule violation anchored at ``path:line:col``.
Findings carry a *fingerprint* — a stable hash of the rule, file and the
text of the offending line (plus an occurrence index for repeated
identical lines) — so the checked-in baseline survives unrelated edits
that only shift line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

#: Schema version of the JSON report and baseline documents.
LINT_FORMAT_VERSION = 1

#: ``kind`` of the JSON report document emitted by ``--format json``.
REPORT_KIND = "qbss_lint_report"

#: ``kind`` of the checked-in baseline document.
BASELINE_KIND = "qbss_lint_baseline"

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``snippet`` is the stripped text of the offending line and
    ``occurrence`` its index among identical ``(rule, path, snippet)``
    triples in the file — together they make :attr:`fingerprint` stable
    under line-number drift.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    occurrence: int = 0

    @property
    def fingerprint(self) -> str:
        material = f"{self.rule}|{self.path}|{self.snippet}|{self.occurrence}"
        return hashlib.sha1(material.encode("utf-8")).hexdigest()[:16]

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.location}: {self.rule} {self.severity}: {self.message}"


def sort_key(finding: Finding) -> tuple[str, int, int, str]:
    """Deterministic report order: by file, position, then rule ID."""
    return (finding.path, finding.line, finding.col, finding.rule)
