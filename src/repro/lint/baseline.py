"""Checked-in baseline of grandfathered findings.

The baseline is a versioned JSON document (it dogfoods the QL006
contract: ``kind`` + ``version``) listing finding fingerprints that are
*known and justified* — they render in reports as ``baselined`` and do
not fail the build.  New findings (not in the baseline) do.

Keep it short: every entry must carry a human justification, and the
project caps the live baseline at a handful of entries — the point of
the linter is to fix findings, not to archive them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .findings import BASELINE_KIND, LINT_FORMAT_VERSION, Finding, sort_key


class BaselineError(ValueError):
    """Raised on a malformed baseline document."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    justification: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    entries: dict[str, BaselineEntry] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path | None) -> Baseline:
        """Load a baseline file; a missing path is an empty baseline."""
        if path is None or not Path(path).exists():
            return cls()
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("kind") != BASELINE_KIND:
            raise BaselineError(
                f"baseline {path} is not a {BASELINE_KIND!r} document"
            )
        if data.get("version") != LINT_FORMAT_VERSION:
            raise BaselineError(
                f"unsupported baseline version {data.get('version')!r} "
                f"(this tool reads version {LINT_FORMAT_VERSION})"
            )
        entries = {}
        for item in data.get("entries", []):
            entry = BaselineEntry(
                rule=str(item["rule"]),
                path=str(item["path"]),
                fingerprint=str(item["fingerprint"]),
                justification=str(item.get("justification", "")),
            )
            entries[entry.fingerprint] = entry
        return cls(entries)

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    @staticmethod
    def write(
        path: Path,
        findings: list[Finding],
        *,
        justification: str = "TODO: justify or fix",
    ) -> None:
        """Write ``findings`` as a fresh baseline document."""
        doc = {
            "version": LINT_FORMAT_VERSION,
            "kind": BASELINE_KIND,
            "entries": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "fingerprint": f.fingerprint,
                    "justification": justification,
                }
                for f in sorted(findings, key=sort_key)
            ],
        }
        Path(path).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
