"""QL002 — registry conformance: uniform `(qi, *, ...)` signatures.

Every callable registered in ``repro.qbss.ALGORITHMS`` is dispatched by
name through ``run_algorithm`` with the uniform keyword set, so each one
must take exactly one positional parameter (the instance, ``qi`` /
``qinstance``), no positional defaults, and keyword-only everything else
(a bare ``*args`` shim for the deprecated positional forms is allowed).
A runner that silently accepts positional extras re-opens the
keyword-mismatch bugs the PR-1 registry removed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from ..context import LintContext, SourceModule
from ..findings import Finding
from . import Rule

#: Package that owns the algorithm registry.
REGISTRY_PACKAGE = "repro.qbss"

#: Names a registered runner's single positional parameter may use.
INSTANCE_PARAM_NAMES = {"qi", "qinstance"}

#: Calls that wrap a callable into a registry spec; the callable is the
#: ``fn`` keyword or the second positional argument.
SPEC_CALLS = {"_spec", "AlgorithmSpec"}

#: Names treated as the registry mapping.
REGISTRY_NAMES = {"ALGORITHMS"}


class RegistryConformanceRule(Rule):
    rule_id = "QL002"
    title = "registry conformance: keyword-only (qi, *, ...) signatures"
    rationale = (
        "Name-based dispatch (engine, measure, causality replay) passes "
        "the uniform keywords; a registered runner with extra positional "
        "parameters or positional defaults breaks that contract silently."
    )

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        seen: set[tuple[str, str]] = set()
        for module in ctx.modules:
            if not module.in_package(REGISTRY_PACKAGE):
                continue
            for fn_expr, reg_node in _registered_callables(module.tree):
                yield from self._check_registered(
                    module, fn_expr, reg_node, ctx, seen
                )

    def _check_registered(
        self,
        module: SourceModule,
        fn_expr: ast.expr,
        reg_node: ast.AST,
        ctx: LintContext,
        seen: set[tuple[str, str]],
    ) -> Iterable[Finding]:
        if isinstance(fn_expr, ast.Lambda):
            yield self.finding(
                module,
                fn_expr,
                "lambda registered in ALGORITHMS; register a named function "
                "with the keyword-only (qi, *, ...) signature",
            )
            return
        resolved = _resolve_function(fn_expr, module, ctx)
        if resolved is None:
            return
        def_module, func = resolved
        key = (def_module.module, func.name)
        if key in seen:
            return
        seen.add(key)
        for message in _signature_violations(func):
            yield self.finding(def_module, func, message)


def _registered_callables(
    tree: ast.Module,
) -> Iterator[tuple[ast.expr, ast.AST]]:
    """Yield ``(callable_expr, registration_node)`` pairs for a module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if not any(_is_registry_target(t) for t in targets):
                continue
            value = node.value
            if value is not None:
                yield from _callables_in_value(value, node)
        elif isinstance(node, ast.Call):
            # ALGORITHMS.update({...})
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "update"
                and isinstance(func.value, ast.Name)
                and func.value.id in REGISTRY_NAMES
            ):
                for arg in node.args:
                    yield from _callables_in_value(arg, node)


def _is_registry_target(target: ast.expr) -> bool:
    if isinstance(target, ast.Name):
        return target.id in REGISTRY_NAMES
    if isinstance(target, ast.Subscript):
        return isinstance(target.value, ast.Name) and target.value.id in REGISTRY_NAMES
    return False


def _callables_in_value(
    value: ast.expr, reg_node: ast.AST
) -> Iterator[tuple[ast.expr, ast.AST]]:
    """Extract registered callables from a registry-shaped expression."""
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name in SPEC_CALLS:
                fn = _spec_callable(node)
                if fn is not None:
                    yield fn, reg_node
        elif isinstance(node, ast.Dict):
            for v in node.values:
                if isinstance(v, (ast.Name, ast.Lambda, ast.Attribute)):
                    yield v, reg_node
    if isinstance(value, (ast.Name, ast.Lambda, ast.Attribute)):
        yield value, reg_node


def _spec_callable(call: ast.Call) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == "fn":
            return kw.value
    if len(call.args) >= 2:
        return call.args[1]
    return None


def _resolve_function(
    fn_expr: ast.expr, module: SourceModule, ctx: LintContext
) -> tuple[SourceModule, ast.FunctionDef | ast.AsyncFunctionDef] | None:
    """Find the def behind a registered callable expression, if we can."""
    if isinstance(fn_expr, ast.Name):
        local = _find_def(module.tree, fn_expr.id)
        if local is not None:
            return module, local
        origin = module.imports.origin(fn_expr)
    else:
        origin = module.imports.origin(fn_expr)
    if origin is None or "." not in origin:
        return None
    target_module, func_name = origin.rsplit(".", 1)
    source = ctx.get(target_module)
    if source is None:
        return None
    func = _find_def(source.tree, func_name)
    if func is None:
        return None
    return source, func


def _find_def(
    tree: ast.AST, name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            return node
    return None


def _signature_violations(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[str]:
    args = func.args
    if args.posonlyargs:
        yield (
            f"registered algorithm `{func.name}` declares positional-only "
            "parameters; the registry contract is (qi, *, ...)"
        )
    positional = args.args
    if not positional:
        yield (
            f"registered algorithm `{func.name}` takes no positional "
            "instance parameter; expected (qi, *, ...)"
        )
    else:
        first = positional[0].arg
        if first not in INSTANCE_PARAM_NAMES:
            yield (
                f"registered algorithm `{func.name}` names its instance "
                f"parameter `{first}`; expected one of "
                f"{sorted(INSTANCE_PARAM_NAMES)}"
            )
        if len(positional) > 1:
            extras = ", ".join(a.arg for a in positional[1:])
            yield (
                f"registered algorithm `{func.name}` has positional "
                f"parameters after the instance ({extras}); they must be "
                "keyword-only (qi, *, ...)"
            )
    if args.defaults:
        yield (
            f"registered algorithm `{func.name}` has positional defaults; "
            "defaults belong on keyword-only parameters"
        )
