"""QL001 — determinism: no wall clocks or global RNG in replayable code.

Byte-identical serial/parallel/cached replays (PR 1–4) require that
nothing inside ``repro.qbss``, ``repro.bounds``, ``repro.engine`` or
``repro.traces`` reads a wall clock or draws from process-global RNG
state: a single unseeded draw invalidates every adversarial lower-bound
verdict computed downstream.  Allowed instead:

- injected clocks (a ``now``/``clock`` parameter; ``repro.obs`` owns the
  monotonic clock) and the monotonic family ``time.monotonic`` /
  ``time.perf_counter`` / ``time.process_time`` for *duration* metrics;
- seeded generator instances: ``random.Random(seed)``,
  ``numpy.random.default_rng(seed)``, ``SeedSequence(seed)`` and the
  explicit bit generators.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import LintContext, SourceModule
from ..findings import Finding
from . import Rule

#: Packages the determinism contract covers (``repro.obs`` is exempt —
#: it owns the monotonic clock and the injected wall-clock stamp).
GUARDED_PACKAGES = ("repro.qbss", "repro.bounds", "repro.engine", "repro.traces")

WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

OS_ENTROPY = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}

#: numpy.random attributes that construct explicit, seedable generators.
NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Constructors that are fine *with* a seed but flagged bare.
SEED_REQUIRED = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
}


class DeterminismRule(Rule):
    rule_id = "QL001"
    title = "determinism: no wall clocks or global RNG state"
    rationale = (
        "Replay determinism (serial == parallel == cached, byte-identical) "
        "only holds when every clock is injected and every random draw "
        "comes from a per-record (seed, index) generator."
    )

    def check_module(
        self, module: SourceModule, ctx: LintContext
    ) -> Iterable[Finding]:
        if not module.in_package(*GUARDED_PACKAGES):
            return
        imports = module.imports
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.origin(node.func)
            if origin is None:
                continue
            message = self._classify(origin, node)
            if message is not None:
                yield self.finding(module, node, message)

    def _classify(self, origin: str, node: ast.Call) -> str | None:
        if origin in WALL_CLOCK:
            return (
                f"wall-clock read `{origin}()` in a deterministic package; "
                "inject a clock parameter instead (repro.obs owns the "
                "monotonic clock)"
            )
        if origin in OS_ENTROPY or origin.startswith("secrets."):
            return (
                f"OS entropy source `{origin}()` in a deterministic package; "
                "derive values from the experiment seed instead"
            )
        if origin in SEED_REQUIRED:
            if not node.args and not node.keywords:
                return (
                    f"unseeded generator `{origin}()`; pass an explicit "
                    "(seed, index)-derived seed"
                )
            return None
        if origin == "random.SystemRandom":
            return (
                "`random.SystemRandom` draws OS entropy and can never replay; "
                "use a seeded `random.Random`"
            )
        if origin.startswith("random."):
            return (
                f"process-global RNG state `{origin}()`; use a seeded "
                "`random.Random(seed)` instance instead"
            )
        if origin.startswith("numpy.random."):
            tail = origin[len("numpy.random.") :]
            if tail not in NP_RANDOM_ALLOWED:
                return (
                    f"process-global numpy RNG `{origin}()`; use "
                    "`numpy.random.default_rng(seed)` instead"
                )
        return None
