"""QL003 — cache-key purity: worker bodies read nothing ambient.

Cache keys are ``experiment + resolved kwargs + package version`` — so a
worker body whose output depends on anything *else* (environment
variables, mutable module globals) silently poisons the content-addressed
cache: two runs with the same key produce different bytes.  This rule
walks the call graph from every function handed to the hardened executor
(``execute_hardened(worker=...)``, ``pool.submit(fn, ...)``) and flags,
anywhere reachable:

- ``os.environ`` / ``os.getenv`` reads — except the sanctioned keys
  (always ``QBSS_FAULT_PLAN`` / ``FAULT_PLAN_ENV``; a ``.qbss-lint.json``
  at the lint root may sanction additional keys, see
  :mod:`repro.lint.config`);
- ``global`` statements and stores into module-level constants.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable, Iterator

from ..config import LintConfig
from ..context import LintContext, SourceModule
from ..flow import GENERIC_ATTRS
from ..findings import Finding
from . import Rule

FuncKey = tuple[str, str]  # (module name, function name)


class CachePurityRule(Rule):
    rule_id = "QL003"
    title = "cache-key purity: no ambient reads in worker bodies"
    rationale = (
        "Content-addressed cache entries are only valid if worker output "
        "is a pure function of the cache key; environment reads and "
        "module-global mutation make identical keys yield different bytes."
    )

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        defs: dict[FuncKey, tuple[SourceModule, ast.AST]] = {}
        defs_by_name: dict[str, list[FuncKey]] = {}
        module_globals: dict[str, set[str]] = {}
        roots: list[FuncKey] = []

        for module in ctx.modules:
            if not module.in_package("repro"):
                continue
            module_globals[module.module] = _module_level_names(module.tree)
            for func in _all_defs(module.tree):
                key = (module.module, func.name)
                defs[key] = (module, func)
                defs_by_name.setdefault(func.name, []).append(key)
            roots.extend(
                (module.module, name)
                for name in _worker_root_names(module.tree)
            )

        reachable = _reach(roots, defs, defs_by_name, ctx)
        for key in sorted(reachable):
            if key not in defs:
                continue
            module, func = defs[key]
            owned_globals = module_globals.get(module.module, set())
            yield from self._check_body(module, func, owned_globals, ctx.config)

    def _check_body(
        self,
        module: SourceModule,
        func: ast.AST,
        owned_globals: set[str],
        config: LintConfig,
    ) -> Iterator[Finding]:
        name = getattr(func, "name", "<fn>")
        sanctioned = ", ".join(sorted(config.sanctioned_env_keys))
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                yield self.finding(
                    module,
                    node,
                    f"worker-reachable `{name}` declares `global "
                    f"{', '.join(node.names)}`; worker bodies must not "
                    "mutate module state",
                )
            elif isinstance(node, ast.Call) and _is_environ_read(node):
                if not _env_key_sanctioned(node.args, config):
                    yield self.finding(
                        module,
                        node,
                        f"worker-reachable `{name}` reads os.environ; only "
                        f"the sanctioned hook(s) ({sanctioned}) are allowed "
                        "in worker bodies (cache keys must stay pure)",
                    )
            elif isinstance(node, ast.Subscript) and _is_environ_node(node.value):
                if isinstance(node.ctx, ast.Load) and not _env_key_sanctioned(
                    [node.slice], config
                ):
                    yield self.finding(
                        module,
                        node,
                        f"worker-reachable `{name}` reads os.environ; only "
                        f"the sanctioned hook(s) ({sanctioned}) are allowed "
                        "in worker bodies (cache keys must stay pure)",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets: list[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                else:
                    targets = list(node.targets)
                for target in targets:
                    root = _store_root(target)
                    if root is not None and root in owned_globals:
                        yield self.finding(
                            module,
                            node,
                            f"worker-reachable `{name}` mutates module-level "
                            f"`{root}`; worker bodies must not mutate module "
                            "state",
                        )


def _store_root(target: ast.expr) -> str | None:
    """Root name of a subscript/attribute store (``X[k] = v``, ``X.a = v``)."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name) and not isinstance(target, ast.Name):
        return node.id
    return None


def _all_defs(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _module_level_names(tree: ast.Module) -> set[str]:
    """Module-level constant-style (ALL_CAPS) bindings."""
    names: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id.isupper():
                names.add(target.id)
    return names


def _worker_root_names(tree: ast.Module) -> Iterator[str]:
    """Names of callables handed to the pool / hardened executor."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = None
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr
        if callee == "execute_hardened":
            for kw in node.keywords:
                if kw.arg == "worker" and isinstance(kw.value, ast.Name):
                    yield kw.value.id
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Name):
                yield node.args[1].id
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in ("submit", "map")
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            yield node.args[0].id


def _reach(
    roots: list[FuncKey],
    defs: dict[FuncKey, tuple[SourceModule, ast.AST]],
    defs_by_name: dict[str, list[FuncKey]],
    ctx: LintContext,
) -> set[FuncKey]:
    """Name-based call-graph closure from the worker roots."""
    seen: set[FuncKey] = set()
    queue: deque[FuncKey] = deque()
    for mod_name, fn_name in roots:
        for key in _candidates(mod_name, fn_name, defs, defs_by_name, ctx):
            if key not in seen:
                seen.add(key)
                queue.append(key)
    while queue:
        key = queue.popleft()
        if key not in defs:
            continue
        module, func = defs[key]
        for callee, via_attr in _called_names(func):
            if via_attr and callee in GENERIC_ATTRS:
                continue
            for nxt in _candidates(module.module, callee, defs, defs_by_name, ctx):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
    return seen


def _candidates(
    mod_name: str,
    fn_name: str,
    defs: dict[FuncKey, tuple[SourceModule, ast.AST]],
    defs_by_name: dict[str, list[FuncKey]],
    ctx: LintContext,
) -> Iterator[FuncKey]:
    local = (mod_name, fn_name)
    if local in defs:
        yield local
        return
    module = ctx.get(mod_name)
    if module is not None:
        origin = module.imports.aliases.get(fn_name)
        if origin is not None and "." in origin:
            target_mod, target_fn = origin.rsplit(".", 1)
            if (target_mod, target_fn) in defs:
                yield (target_mod, target_fn)
                return
    # Method-style attribute call: match any same-named def in the tree.
    yield from defs_by_name.get(fn_name, [])


def _called_names(func: ast.AST) -> Iterator[tuple[str, bool]]:
    """(callee name, was-attribute-call) for every call in ``func``."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name):
            yield node.func.id, False
        elif isinstance(node.func, ast.Attribute):
            yield node.func.attr, True


def _is_environ_node(node: ast.expr) -> bool:
    """True for expressions rooted in ``os.environ`` (or a bool-or of it)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "environ":
            return True
        if isinstance(sub, ast.Name) and sub.id == "environ":
            return True
    return False


def _is_environ_read(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in ("get", "pop", "setdefault") and _is_environ_node(func.value):
            return True
        if func.attr == "getenv" and isinstance(func.value, ast.Name):
            return func.value.id == "os"
    if isinstance(func, ast.Name) and func.id == "getenv":
        return True
    return False


def _env_key_sanctioned(args: list[ast.expr], config: LintConfig) -> bool:
    if not args:
        return False
    key = args[0]
    if isinstance(key, ast.Constant) and key.value in config.sanctioned_env_keys:
        return True
    if isinstance(key, ast.Name) and key.id in config.sanctioned_env_names:
        return True
    return False
