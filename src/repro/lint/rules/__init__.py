"""Rule registry for qbss-lint.

Each rule is a small AST visitor with a stable ID (``QL001`` …), a
severity, and a one-paragraph rationale tying it to the project
invariant it guards (see ``docs/static-analysis.md``).  Rules see one
module at a time through :meth:`Rule.check_module` and may emit
cross-module findings from :meth:`Rule.finalize` once the whole tree has
been parsed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from typing import ClassVar

from ..context import LintContext, SourceModule
from ..findings import SEVERITY_ERROR, Finding


class Rule:
    """Base class for one lint rule."""

    rule_id: ClassVar[str] = "QL000"
    title: ClassVar[str] = ""
    severity: ClassVar[str] = SEVERITY_ERROR
    rationale: ClassVar[str] = ""

    def check_module(
        self, module: SourceModule, ctx: LintContext
    ) -> Iterable[Finding]:
        """Per-module pass; yield findings anchored in ``module``."""
        return ()

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        """Whole-tree pass after every module has been checked."""
        return ()

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=module.rel_path,
            line=line,
            col=col,
            message=message,
            snippet=module.line_text(line),
        )


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in ID order."""
    from ..concurrency import BlockingCallRule, LockDisciplineRule, LockOrderRule
    from ..lifecycle import DurabilityOrderRule, ResourceLifecycleRule
    from .ql001_determinism import DeterminismRule
    from .ql002_registry import RegistryConformanceRule
    from .ql003_cache_purity import CachePurityRule
    from .ql004_exceptions import ExceptionHygieneRule
    from .ql005_float_eq import FloatEqualityRule
    from .ql006_versioned_io import VersionedIORule

    return [
        DeterminismRule(),
        RegistryConformanceRule(),
        CachePurityRule(),
        ExceptionHygieneRule(),
        FloatEqualityRule(),
        VersionedIORule(),
        LockDisciplineRule(),
        LockOrderRule(),
        BlockingCallRule(),
        ResourceLifecycleRule(),
        DurabilityOrderRule(),
    ]


def select_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[Rule]:
    """Filter the registry by explicit select/ignore ID lists."""
    rules = all_rules()
    if select is not None:
        wanted = {r.upper() for r in select}
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.rule_id in wanted]
    if ignore is not None:
        dropped = {r.upper() for r in ignore}
        rules = [r for r in rules if r.rule_id not in dropped]
    return rules


def walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
