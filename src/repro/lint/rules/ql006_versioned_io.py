"""QL006 — versioned IO: every document kind declares a version field.

Everything ``repro.io`` archives is "versioned plain JSON"; the loaders
refuse documents whose ``version`` they don't understand.  A writer that
emits a ``kind`` without a ``version`` produces files that future
readers can neither trust nor migrate.  This rule flags:

- any dict literal whose ``"kind"`` is a known document kind (discovered
  from ``repro.io``'s loader registry, plus the built-in set) but which
  carries no ``"version"`` key;
- in ``repro.io`` itself, *any* constant-``kind`` dict without a
  version;
- functions that assign ``data["kind"] = <document kind>`` without also
  assigning ``data["version"]``.

Incidental ``kind`` fields (e.g. failure-kind enums whose value is not a
document kind) are not flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from ..context import LintContext, SourceModule
from ..findings import Finding
from . import Rule

#: Document kinds of the repo's IO layer; extended at lint time with
#: whatever ``repro.io._LOADERS`` declares, so new kinds are covered
#: without touching this rule.
DEFAULT_DOCUMENT_KINDS = {
    "classical",
    "qbss",
    "profile",
    "schedule",
    "experiment_report",
    "trace_replay_report",
    "run_manifest",
}

IO_MODULE = "repro.io"


class VersionedIORule(Rule):
    rule_id = "QL006"
    title = "versioned IO: document kinds must declare a version"
    rationale = (
        "Archived documents are replayed across package versions; a "
        "kind without a version field can never be safely migrated or "
        "rejected by a future loader."
    )

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        kinds = set(DEFAULT_DOCUMENT_KINDS)
        io_module = ctx.get(IO_MODULE)
        if io_module is not None:
            kinds |= _declared_kinds(io_module.tree)
        for module in ctx.modules:
            if not module.in_package("repro"):
                continue
            yield from self._check_module_kinds(module, kinds)

    def _check_module_kinds(
        self, module: SourceModule, kinds: set[str]
    ) -> Iterator[Finding]:
        constants = _module_str_constants(module.tree)
        is_io = module.module == IO_MODULE
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                kind = _dict_kind(node, constants)
                if kind is None:
                    continue
                if (is_io or kind in kinds) and not _has_key(node, "version"):
                    yield self.finding(
                        module,
                        node,
                        f"document dict of kind {kind!r} has no 'version' "
                        "field; every archived kind must be versioned",
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_envelope_fn(module, node, kinds, is_io)

    def _check_envelope_fn(
        self,
        module: SourceModule,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        kinds: set[str],
        is_io: bool,
    ) -> Iterator[Finding]:
        """``data["kind"] = k`` without ``data["version"] = ...`` nearby."""
        kind_assign: ast.Assign | None = None
        kind_value: str | None = None
        has_version = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                key = _subscript_key(target)
                if key == "version":
                    has_version = True
                elif (
                    key == "kind"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    kind_assign = node
                    kind_value = node.value.value
        if kind_assign is None or kind_value is None or has_version:
            return
        if is_io or kind_value in kinds:
            yield self.finding(
                module,
                kind_assign,
                f"envelope sets kind {kind_value!r} but never sets "
                "'version'; every archived kind must be versioned",
            )


def _declared_kinds(tree: ast.Module) -> set[str]:
    """Kinds registered in ``_LOADERS`` or checked via ``_expect(d, k)``."""
    kinds: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "_LOADERS"
                    and isinstance(node.value, ast.Dict)
                ):
                    for key in node.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            kinds.add(key.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "_expect"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                kinds.add(node.args[1].value)
    return kinds


def _module_str_constants(tree: ast.Module) -> dict[str, str]:
    constants: dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = node.value.value
    return constants


def _dict_kind(node: ast.Dict, constants: dict[str, str]) -> str | None:
    """The constant string kind of a dict literal, if it has one."""
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and key.value == "kind"):
            continue
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
        if isinstance(value, ast.Name) and value.id in constants:
            return constants[value.id]
    return None


def _has_key(node: ast.Dict, name: str) -> bool:
    return any(
        isinstance(key, ast.Constant) and key.value == name for key in node.keys
    )


def _subscript_key(target: ast.expr) -> str | None:
    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.slice, ast.Constant)
        and isinstance(target.slice.value, str)
    ):
        return target.slice.value
    return None
