"""QL005 — float equality: no `==`/`!=` on float expressions in verdict code.

The paper-bound verdicts in ``repro.bounds`` / ``repro.analysis`` decide
pass/fail from computed ratios; an exact ``==`` on a value that went
through division, a power, or a math call is a latent flake (one libm or
summation-order difference flips the verdict).  Use ``math.isclose`` or
an explicit tolerance.

Detection is syntactic and deliberately conservative: an operand counts
as a float expression only when it visibly is one — a float literal, an
expression containing ``/`` or ``**``, a ``float(...)`` cast, or a
float-returning ``math.*`` call.  Comparing two bare names (e.g. numpy
elementwise masks like ``(c == b)``) is *not* flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from ..context import LintContext, SourceModule
from ..findings import SEVERITY_WARNING, Finding
from . import Rule

#: Packages whose verdict code the rule covers.
GUARDED_PACKAGES = ("repro.bounds", "repro.analysis")

#: math functions that return ints (safe to compare exactly).
MATH_INT_RETURNING = {"floor", "ceil", "isqrt", "comb", "perm", "factorial", "gcd", "lcm"}


class FloatEqualityRule(Rule):
    rule_id = "QL005"
    title = "float equality: use math.isclose in verdict code"
    severity = SEVERITY_WARNING
    rationale = (
        "Paper-bound verdicts compare computed ratios; exact equality on "
        "a divided/powered/math-derived value flips on harmless "
        "floating-point noise and turns the verdict into a flake."
    )

    def check_module(
        self, module: SourceModule, ctx: LintContext
    ) -> Iterable[Finding]:
        if not module.in_package(*GUARDED_PACKAGES):
            return
        imports = module.imports
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_expr(left, imports) or _is_float_expr(right, imports):
                    yield self.finding(
                        module,
                        node,
                        "exact ==/!= on a float expression in verdict code; "
                        "use math.isclose(..., rel_tol=...) or an explicit "
                        "tolerance",
                    )
                    break


def _is_float_expr(node: ast.expr, imports: object) -> bool:
    """Syntactically-visible float expression (conservative)."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_expr(node.operand, imports)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, (ast.Div, ast.Pow)):
            return True
        return _is_float_expr(node.left, imports) or _is_float_expr(
            node.right, imports
        )
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        origin = imports.origin(func) if hasattr(imports, "origin") else None
        if origin is not None and origin.startswith("math."):
            return origin[len("math.") :] not in MATH_INT_RETURNING
    return False
