"""QL004 — exception hygiene: never swallow BaseException.

The PR-3 Ctrl-C bug, generalized: a handler that catches
``BaseException`` (or uses a bare ``except:``) also catches
``KeyboardInterrupt`` / ``SystemExit``; unless it re-raises, a worker
that should die keeps running and the cache records a half-computed
result as truth.  Two checks, everywhere under ``repro``:

- bare ``except:`` is always a finding — name what you catch;
- ``except BaseException`` (or ``KeyboardInterrupt`` / ``SystemExit`` /
  ``GeneratorExit``, alone or in a tuple) must contain a bare ``raise``
  somewhere in the handler body.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from ..context import LintContext, SourceModule
from ..findings import Finding
from . import Rule

#: Exception names whose handlers must re-raise.
MUST_RERAISE = {"BaseException", "KeyboardInterrupt", "SystemExit", "GeneratorExit"}


class ExceptionHygieneRule(Rule):
    rule_id = "QL004"
    title = "exception hygiene: no swallowed BaseException"
    rationale = (
        "Swallowing KeyboardInterrupt/SystemExit keeps doomed workers "
        "alive and lets half-computed results reach the cache; every "
        "BaseException handler must re-raise."
    )

    def check_module(
        self, module: SourceModule, ctx: LintContext
    ) -> Iterable[Finding]:
        if not module.in_package("repro"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` catches BaseException silently; name "
                    "the exceptions and re-raise BaseException explicitly",
                )
                continue
            caught = set(_exception_names(node.type))
            dangerous = caught & MUST_RERAISE
            if dangerous and not _has_bare_raise(node):
                names = ", ".join(sorted(dangerous))
                yield self.finding(
                    module,
                    node,
                    f"handler catches {names} without a bare `raise`; "
                    "KeyboardInterrupt/SystemExit must propagate",
                )


def _exception_names(node: ast.expr) -> Iterator[str]:
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            yield from _exception_names(elt)
    elif isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr


def _has_bare_raise(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
        # `raise exc` where exc is the handler's own name is a re-raise too.
        if (
            isinstance(node, ast.Raise)
            and isinstance(node.exc, ast.Name)
            and handler.name is not None
            and node.exc.id == handler.name
        ):
            return True
    return False
