"""QL007-QL009 -- concurrency contracts over the shared flow layer.

Three rules ride on :class:`repro.lint.flow.ProjectFlow`:

- **QL007 lock discipline**: an attribute of a class that owns a
  ``Lock``/``RLock``/``Condition`` may only be mutated under ``with
  self.<lock>`` in methods reachable from more than one thread.  A
  helper whose *every* resolved call site sits under the owning lock
  counts as guarded (the ``_sweep`` / ``_locked``-suffix idiom).
- **QL008 lock-order consistency**: the static lock-acquisition graph
  (every ``with <lock>`` block, closed over calls and property loads)
  must be acyclic.  :func:`build_lock_graph` is exported so tests can
  cross-validate the static graph against the runtime
  :mod:`repro.lint.lockwatch` observations.
- **QL009 blocking-call hygiene**: code reachable from a ``main`` entry
  point must not block unboundedly -- untimed ``Event.wait()``,
  ``Condition.wait()`` outside a predicate re-check loop, and
  ``socket.accept/recv`` without a timeout are flagged.  This is the
  bug class the serve daemon fixed by hand (an untimed wait on the main
  thread starves signal delivery).
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field

from .context import LintContext, SourceModule
from .findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from .flow import (
    KIND_CONDITION,
    KIND_LOCK,
    KIND_RLOCK,
    ClassInfo,
    FuncKey,
    FunctionInfo,
    ProjectFlow,
    TypeEnv,
    dotted_key,
)
from .lockwatch import find_cycles
from .rules import Rule

#: Container methods that mutate their receiver in place.
_MUTATING_CALLS = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "add",
    "remove",
    "discard",
    "clear",
    "pop",
    "popleft",
    "popitem",
    "update",
    "setdefault",
    "sort",
    "reverse",
}

#: Construction-time methods run before the object is shared.
_EXEMPT_METHODS = {"__init__", "__post_init__", "__new__", "__del__"}


# -- shared lock-expression resolution ----------------------------------------


def resolve_lock_expr(
    expr: ast.expr, info: FunctionInfo, flow: ProjectFlow, env: TypeEnv
) -> list[tuple[str, str]]:
    """``(lock id, kind)`` candidates for a with-item / acquire target.

    Lock ids follow the lockwatch naming convention: ``Class.attr`` for
    instance locks, ``module.name`` for module-level locks.
    """
    if isinstance(expr, ast.Name):
        kind = flow.module_locks.get((info.module.module, expr.id))
        if kind is not None:
            return [(f"{info.module.module}.{expr.id}", kind)]
        prim = env.prims.get(expr.id)
        if prim in (KIND_LOCK, KIND_RLOCK, KIND_CONDITION):
            scope = f"{info.module.module}.{info.node.name}"
            return [(f"{scope}.{expr.id}", prim)]
        return []
    if isinstance(expr, ast.Attribute):
        base = flow.expr_classes(expr.value, info, env)
        if base:
            out = []
            for cls in base:
                kind = flow.lock_attr_kind(cls, expr.attr)
                if kind is not None:
                    out.append((f"{cls.name}.{expr.attr}", kind))
            return sorted(set(out))
        # Untyped receiver: over-approximate to every class owning a
        # lock attribute with this name.
        return sorted(
            {
                (f"{cls.name}.{expr.attr}", cls.lock_attrs[expr.attr])
                for cls in flow.classes
                if expr.attr in cls.lock_attrs
            }
        )
    return []


def with_lock_ids(
    stmt: ast.With | ast.AsyncWith,
    info: FunctionInfo,
    flow: ProjectFlow,
    env: TypeEnv,
) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    for item in stmt.items:
        out.extend(resolve_lock_expr(item.context_expr, info, flow, env))
    return out


def _under_lock_of(
    node: ast.AST,
    info: FunctionInfo,
    cls: ClassInfo,
    flow: ProjectFlow,
    env: TypeEnv,
) -> bool:
    """Whether ``node`` sits lexically inside a ``with`` on a lock of ``cls``."""
    parents = flow.parent_map(info)
    prefix = f"{cls.name}."
    cur = parents.get(id(node))
    while cur is not None:
        if isinstance(cur, (ast.With, ast.AsyncWith)):
            for lock_id, _kind in with_lock_ids(cur, info, flow, env):
                if lock_id.startswith(prefix):
                    return True
        cur = parents.get(id(cur))
    return False


# -- QL007 --------------------------------------------------------------------


class LockDisciplineRule(Rule):
    rule_id = "QL007"
    title = "lock discipline: guarded state mutates only under the owning lock"
    severity = SEVERITY_ERROR
    rationale = (
        "A class that owns a lock promises its mutable state is guarded; "
        "one mutation outside the lock in a method reachable from two "
        "threads is a data race that can silently corrupt admission or "
        "journal state and break byte-identical replay."
    )

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        flow = ctx.flow
        for cls in sorted(
            flow.classes, key=lambda c: (c.module.rel_path, c.name)
        ):
            if not cls.lock_attrs:
                continue
            guarded = (
                cls.inst_attrs
                - set(cls.lock_attrs)
                - cls.event_attrs
                - cls.safe_attrs
            )
            if not guarded:
                continue
            for name in sorted(cls.methods):
                if name in _EXEMPT_METHODS:
                    continue
                method = cls.methods[name]
                env = flow.type_env(method)
                sites = [
                    (node, attr)
                    for node, attr in _self_mutations(method.node)
                    if attr in guarded
                    and not _under_lock_of(node, method, cls, flow, env)
                ]
                if not sites:
                    continue
                if not flow.is_multi_threaded(method.key):
                    continue
                if _all_call_sites_guarded(flow, cls, name):
                    continue
                locks = ", ".join(
                    f"self.{attr}" for attr in sorted(cls.lock_attrs)
                )
                for node, attr in sorted(
                    sites, key=lambda s: getattr(s[0], "lineno", 0)
                ):
                    yield self.finding(
                        cls.module,
                        node,
                        f"`{cls.name}.{attr}` is mutated outside "
                        f"`with {locks}` in `{name}`, which is reachable "
                        "from more than one thread",
                    )


def _self_mutations(root: ast.AST) -> list[tuple[ast.AST, str]]:
    """(node, attr) for every mutation of ``self.<attr>`` under ``root``."""
    out: list[tuple[ast.AST, str]] = []
    for sub in ast.walk(root):
        targets: list[ast.expr] = []
        if isinstance(sub, (ast.Assign, ast.Delete)):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = [sub.target]
        elif (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _MUTATING_CALLS
        ):
            attr = _self_attr_root(sub.func.value)
            if attr is not None:
                out.append((sub, attr))
            continue
        for target in targets:
            attr = _self_attr_root(target)
            if attr is not None:
                out.append((sub, attr))
    return out


def _self_attr_root(expr: ast.expr) -> str | None:
    """``self.X`` root of an attribute/subscript chain, or ``None``."""
    node: ast.expr = expr
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


def _all_call_sites_guarded(
    flow: ProjectFlow, cls: ClassInfo, method_name: str
) -> bool:
    """True when every resolved call site of the method holds the lock.

    This sanctions the private-helper idiom (``_sweep``,
    ``_append_locked``): the helper itself mutates bare, but is only
    ever entered with the owning lock already held.
    """
    sites = 0
    for key in sorted(flow.functions):
        info = flow.functions[key]
        env: TypeEnv | None = None
        for sub in ast.walk(info.node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute):
                if func.attr != method_name:
                    continue
                env = env if env is not None else flow.type_env(info)
                base = flow.expr_classes(func.value, info, env)
                if base and not any(
                    cls in set(flow.mro(candidate)) for candidate in base
                ):
                    continue  # typed call to an unrelated class
            elif isinstance(func, ast.Name):
                if func.id != method_name:
                    continue
                env = env if env is not None else flow.type_env(info)
            else:
                continue
            sites += 1
            if not _under_lock_of(sub, info, cls, flow, env):
                return False
    return sites > 0


# -- QL008 --------------------------------------------------------------------


@dataclass
class LockGraph:
    """Static lock-acquisition graph: edge = acquired-while-holding."""

    edges: dict[tuple[str, str], list[tuple[SourceModule, ast.AST]]] = field(
        default_factory=dict
    )
    kinds: dict[str, str] = field(default_factory=dict)

    def edge_set(self) -> set[tuple[str, str]]:
        return set(self.edges)

    def cycles(self) -> list[list[str]]:
        return find_cycles(self.edge_set())


def build_lock_graph(ctx: LintContext) -> LockGraph:
    """Static acquisition-order graph over the whole parsed tree.

    For every ``with <lock>`` block, any lock acquired lexically inside
    it or anywhere in functions reachable from its body (calls and
    property loads, closed transitively) adds an edge ``held ->
    acquired``.  Same-lock re-acquisition is not an ordering edge.
    """
    flow = ctx.flow
    graph = LockGraph()
    for key in sorted(flow.functions):
        info = flow.functions[key]
        env = flow.type_env(info)
        for stmt in ast.walk(info.node):
            if not isinstance(stmt, (ast.With, ast.AsyncWith)):
                continue
            held = with_lock_ids(stmt, info, flow, env)
            if not held:
                continue
            for lock_id, kind in held:
                graph.kinds.setdefault(lock_id, kind)
            acquired = _acquisitions_under(stmt, info, flow, env)
            for held_id, _held_kind in held:
                for acq_id, acq_kind, mod, node in acquired:
                    graph.kinds.setdefault(acq_id, acq_kind)
                    if acq_id == held_id:
                        continue
                    graph.edges.setdefault((held_id, acq_id), []).append(
                        (mod, node)
                    )
    return graph


def _acquisitions_under(
    stmt: ast.With | ast.AsyncWith,
    info: FunctionInfo,
    flow: ProjectFlow,
    env: TypeEnv,
) -> list[tuple[str, str, SourceModule, ast.AST]]:
    out: list[tuple[str, str, SourceModule, ast.AST]] = []
    start: set[FuncKey] = set()
    for body_stmt in stmt.body:
        for sub in ast.walk(body_stmt):
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for lock_id, kind in with_lock_ids(sub, info, flow, env):
                    out.append((lock_id, kind, info.module, sub))
            elif isinstance(sub, ast.Call):
                start.update(flow.resolve_call(sub, info, env))
        start.update(flow.property_loads(body_stmt, info, env))
    seen: set[FuncKey] = set()
    queue: deque[FuncKey] = deque(
        key for key in sorted(start) if key in flow.functions
    )
    while queue:
        key = queue.popleft()
        if key in seen:
            continue
        seen.add(key)
        called = flow.functions[key]
        called_env = flow.type_env(called)
        for sub in ast.walk(called.node):
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for lock_id, kind in with_lock_ids(
                    sub, called, flow, called_env
                ):
                    out.append((lock_id, kind, called.module, sub))
        for nxt in sorted(flow.callees(called)):
            if nxt not in seen and nxt in flow.functions:
                queue.append(nxt)
    return out


class LockOrderRule(Rule):
    rule_id = "QL008"
    title = "lock-order consistency: the acquisition graph must be acyclic"
    severity = SEVERITY_ERROR
    rationale = (
        "Two locks taken in opposite orders on two threads deadlock the "
        "daemon; the static acquisition graph over-approximates every "
        "nesting, so a cycle here is a deadlock waiting for the right "
        "interleaving."
    )

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        graph = build_lock_graph(ctx)
        for cycle in graph.cycles():
            members = set(cycle)
            sites = [
                site
                for edge, edge_sites in sorted(graph.edges.items())
                if edge[0] in members and edge[1] in members
                for site in edge_sites
            ]
            if not sites:
                continue
            module, node = min(
                sites,
                key=lambda s: (s[0].rel_path, getattr(s[1], "lineno", 0)),
            )
            path = " -> ".join([*cycle, cycle[0]])
            yield self.finding(
                module,
                node,
                f"inconsistent lock order (potential deadlock): {path}",
            )


# -- QL009 --------------------------------------------------------------------


class BlockingCallRule(Rule):
    rule_id = "QL009"
    title = "blocking-call hygiene on the main thread"
    severity = SEVERITY_WARNING
    rationale = (
        "An untimed wait on the main thread starves signal delivery: the "
        "daemon cannot drain on SIGTERM, and a lost wakeup hangs it "
        "forever.  Main-reachable code polls with timeouts or re-checks "
        "its predicate in a loop."
    )

    def finalize(self, ctx: LintContext) -> Iterable[Finding]:
        flow = ctx.flow
        for key in sorted(flow.group_reach("main")):
            info = flow.functions[key]
            env = flow.type_env(info)
            with_timeout = {
                dotted_key(sub.func.value)
                for sub in ast.walk(info.node)
                if isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "settimeout"
            }
            parents = flow.parent_map(info)
            for sub in ast.walk(info.node):
                if not (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                ):
                    continue
                attr = sub.func.attr
                receiver = sub.func.value
                if attr == "wait" and not sub.args and not sub.keywords:
                    prim = flow.expr_prim(receiver, info, env)
                    if prim == "event":
                        yield self.finding(
                            info.module,
                            sub,
                            "untimed Event.wait() on the main thread; poll "
                            "with wait(timeout) in a loop so signals are "
                            "delivered",
                        )
                    elif prim == KIND_CONDITION and not _in_while(
                        sub, parents
                    ):
                        yield self.finding(
                            info.module,
                            sub,
                            "Condition.wait() outside a predicate re-check "
                            "loop on the main thread (lost-wakeup hazard)",
                        )
                elif attr in ("accept", "recv"):
                    prim = flow.expr_prim(receiver, info, env)
                    if prim == "socket" and dotted_key(receiver) not in (
                        with_timeout
                    ):
                        yield self.finding(
                            info.module,
                            sub,
                            f"blocking socket.{attr}() on the main thread "
                            "without a timeout",
                        )


def _in_while(node: ast.AST, parents: dict[int, ast.AST]) -> bool:
    cur = parents.get(id(node))
    while cur is not None:
        if isinstance(cur, ast.While):
            return True
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        cur = parents.get(id(cur))
    return False
