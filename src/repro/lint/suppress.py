"""Inline suppression directives.

Three forms, all comments:

- ``# qbss-lint: disable=QL001`` (or ``QL001,QL005`` or ``all``) trailing
  on the flagged line suppresses those rules on that line;
- the same directive on a line of its own suppresses the *next* line
  (for lines too long to carry a trailing comment);
- ``# qbss-lint: disable-file=QL003`` anywhere in the file suppresses the
  rule for the whole file.

Directives are parsed from real comment tokens (via :mod:`tokenize`), so
string literals that merely *contain* the directive text do not
suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize

DIRECTIVE_RE = re.compile(
    r"#\s*qbss-lint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Sentinel rule list meaning "every rule".
ALL = "all"


class Suppressions:
    """Parsed suppression directives for one file."""

    def __init__(self) -> None:
        #: line number → set of rule IDs (or {"all"}) suppressed there.
        self.by_line: dict[int, set[str]] = {}
        #: rule IDs (or {"all"}) suppressed for the whole file.
        self.file_wide: set[str] = set()

    @classmethod
    def scan(cls, source: str) -> Suppressions:
        supp = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return supp
        # Lines that hold any non-comment code, to tell trailing
        # directives (apply here) from standalone ones (apply below).
        code_lines: set[int] = set()
        for tok in tokens:
            if tok.type not in (
                tokenize.COMMENT,
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                for lineno in range(tok.start[0], tok.end[0] + 1):
                    code_lines.add(lineno)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = DIRECTIVE_RE.search(tok.string)
            if match is None:
                continue
            rules = {
                part.strip().upper() if part.strip() != ALL else ALL
                for part in match.group("rules").split(",")
                if part.strip()
            }
            if match.group("scope") == "disable-file":
                supp.file_wide |= rules
            else:
                lineno = tok.start[0]
                target = lineno if lineno in code_lines else lineno + 1
                supp.by_line.setdefault(target, set()).update(rules)
        return supp

    def is_suppressed(self, rule: str, line: int) -> bool:
        if ALL in self.file_wide or rule in self.file_wide:
            return True
        rules = self.by_line.get(line, ())
        return ALL in rules or rule in rules
