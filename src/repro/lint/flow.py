"""Project-wide call-graph and class-attribute-flow analysis.

QL003's worker-reachability BFS solved one instance of a general
problem: several contracts are properties of *paths through the
project*, not of single files.  This module generalizes that layer so
the concurrency and durability rules (QL007-QL011) share one index:

- every function and method definition, keyed ``(module, qualname)``;
- every class: its methods, properties, instance attributes, the
  ``threading`` locks it owns, and best-effort attribute *types*
  (``self.queue = AdmissionQueue(...)`` binds ``queue`` ->
  ``AdmissionQueue``) resolved from constructor calls and annotations;
- thread roots: ``threading.Thread(target=...)`` sites, ``do_*``
  methods of ``BaseHTTPRequestHandler`` subclasses (one shared
  ``http-handler`` group -- the threading HTTP server runs each request
  on its own thread), and ``main``-style CLI entry points;
- a reachability BFS whose attribute-call resolution prefers the typed
  binding and falls back to name matching only when no type is known.

The model is an over-approximation (every candidate callee is
followed); the known false negatives -- cross-object mutation,
dynamically constructed classes -- are documented in
``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from .context import LintContext, SourceModule

FuncKey = tuple[str, str]

#: Attribute-call names too generic to traverse by name alone (dict.get,
#: list.append, ...) -- following them would connect every function to
#: every other one.  Typed receivers bypass this list entirely.
GENERIC_ATTRS = {
    "get",
    "put",
    "keys",
    "items",
    "values",
    "update",
    "append",
    "extend",
    "pop",
    "add",
    "close",
    "join",
    "write",
    "read",
    "copy",
    "sort",
    "index",
    "count",
    "format",
    "split",
    "strip",
    "mean",
    "sum",
    "encode",
    "decode",
    "submit",
    "result",
    "cancel",
    "done",
    "lower",
    "upper",
    "startswith",
    "endswith",
    "exists",
    "mkdir",
    "resolve",
    "to_dict",
    "from_dict",
    "dumps",
    "loads",
    "popleft",
    "setdefault",
}

KIND_LOCK = "lock"
KIND_RLOCK = "rlock"
KIND_CONDITION = "condition"

#: Dotted origins that construct a lock-like primitive.  The lockwatch
#: seam (:mod:`repro.lint.lockwatch`) is recognized alongside the raw
#: ``threading`` factories so instrumented production code keeps the
#: same static model.
LOCK_FACTORIES: dict[str, str] = {
    "threading.Lock": KIND_LOCK,
    "threading.RLock": KIND_RLOCK,
    "threading.Condition": KIND_CONDITION,
    "repro.lint.lockwatch.new_lock": KIND_LOCK,
    "repro.lint.lockwatch.new_rlock": KIND_RLOCK,
    "repro.lint.lockwatch.new_condition": KIND_CONDITION,
}

EVENT_FACTORIES = {"threading.Event"}

#: Internally synchronized containers: attributes holding one are exempt
#: from QL007's lock-discipline check.
THREADSAFE_FACTORIES = {"threading.local", "queue.Queue", "queue.SimpleQueue"}

SOCKET_FACTORIES = {
    "socket.socket",
    "socket.create_connection",
    "socket.create_server",
}

_HTTP_HANDLER_BASES = {
    "http.server.BaseHTTPRequestHandler",
    "http.server.SimpleHTTPRequestHandler",
}

_MAIN_ROOT_GROUP = "main"
_HTTP_ROOT_GROUP = "http-handler"


def lock_kind_of_call(call: ast.Call, module: SourceModule) -> str | None:
    """Lock kind constructed by ``call``, or ``None``."""
    origin = module.imports.origin(call.func)
    if origin is not None:
        return LOCK_FACTORIES.get(origin)
    return None


def prim_kind_of_call(call: ast.Call, module: SourceModule) -> str | None:
    """Primitive kind (lock/rlock/condition/event/socket) of ``call``."""
    kind = lock_kind_of_call(call, module)
    if kind is not None:
        return kind
    origin = module.imports.origin(call.func)
    if origin in EVENT_FACTORIES:
        return "event"
    if origin in SOCKET_FACTORIES:
        return "socket"
    return None


def dotted_key(expr: ast.expr) -> str | None:
    """``self._fh`` / ``tmp_path`` as a dotted string, else ``None``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass(eq=False)
class FunctionInfo:
    """One function or method definition."""

    key: FuncKey
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: ClassInfo | None = None
    is_property: bool = False


@dataclass(eq=False)
class ClassInfo:
    """One class: methods, owned locks, and attribute types."""

    module: SourceModule
    node: ast.ClassDef
    name: str
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    properties: set[str] = field(default_factory=set)
    #: ``self`` attribute -> lock kind for attributes assigned a lock
    #: factory call anywhere in the class body.
    lock_attrs: dict[str, str] = field(default_factory=dict)
    event_attrs: set[str] = field(default_factory=set)
    #: attributes holding internally synchronized objects (thread-locals,
    #: queues) -- exempt from lock-discipline checks.
    safe_attrs: set[str] = field(default_factory=set)
    #: every ``self.X`` ever assigned in a method of this class.
    inst_attrs: set[str] = field(default_factory=set)
    #: ``self`` attribute -> candidate in-tree classes it holds.
    attr_types: dict[str, set[ClassInfo]] = field(default_factory=dict)


@dataclass(eq=False)
class TypeEnv:
    """Best-effort local types for one function body."""

    classes: dict[str, set[ClassInfo]] = field(default_factory=dict)
    #: name -> primitive kind ("event", "condition", "socket", "lock"...)
    prims: dict[str, str] = field(default_factory=dict)


class ProjectFlow:
    """Shared indexes + reachability over one parsed :class:`LintContext`."""

    def __init__(self, ctx: LintContext) -> None:
        self.ctx = ctx
        self.functions: dict[FuncKey, FunctionInfo] = {}
        self.by_bare_name: dict[str, list[FuncKey]] = {}
        self.classes: list[ClassInfo] = []
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        #: (module, name) -> kind for module-level lock bindings.
        self.module_locks: dict[tuple[str, str], str] = {}
        self._reach_cache: dict[str, frozenset[FuncKey]] = {}
        self._env_cache: dict[FuncKey, TypeEnv] = {}
        self._parent_cache: dict[FuncKey, dict[int, ast.AST]] = {}
        self._collect()
        self._resolve_attr_types()
        self.root_groups: dict[str, list[FuncKey]] = self._discover_roots()

    # -- index construction ---------------------------------------------------

    def _collect(self) -> None:
        for module in self.ctx.modules:
            if not module.in_package("repro"):
                continue
            method_ids: set[int] = set()
            for cnode in [
                n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
            ]:
                cls = ClassInfo(module=module, node=cnode, name=cnode.name)
                self.classes.append(cls)
                self.classes_by_name.setdefault(cls.name, []).append(cls)
                for stmt in cnode.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_ids.add(id(stmt))
                        is_prop = any(
                            (isinstance(d, ast.Name) and d.id == "property")
                            or (
                                isinstance(d, ast.Attribute)
                                and d.attr in ("property", "cached_property")
                            )
                            for d in stmt.decorator_list
                        )
                        key = (module.module, f"{cls.name}.{stmt.name}")
                        info = FunctionInfo(key, module, stmt, cls, is_prop)
                        cls.methods[stmt.name] = info
                        if is_prop:
                            cls.properties.add(stmt.name)
                        self.functions[key] = info
                        self.by_bare_name.setdefault(stmt.name, []).append(key)
                    elif isinstance(stmt, ast.Assign):
                        self._record_class_binding(cls, stmt.targets, stmt.value)
                self._record_instance_attrs(cls)
            for fnode in [
                n
                for n in ast.walk(module.tree)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and id(n) not in method_ids
            ]:
                key = (module.module, fnode.name)
                if key in self.functions:
                    continue  # nested def shadowed by an earlier sibling
                self.functions[key] = FunctionInfo(key, module, fnode)
                self.by_bare_name.setdefault(fnode.name, []).append(key)
            for stmt in module.tree.body:
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Call
                ):
                    kind = lock_kind_of_call(stmt.value, module)
                    if kind is None:
                        continue
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.module_locks[(module.module, target.id)] = kind

    def _record_class_binding(
        self, cls: ClassInfo, targets: list[ast.expr], value: ast.expr
    ) -> None:
        if not isinstance(value, ast.Call):
            return
        kind = lock_kind_of_call(value, cls.module)
        origin = cls.module.imports.origin(value.func)
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            cls.inst_attrs.add(target.id)
            if kind is not None:
                cls.lock_attrs[target.id] = kind
            elif origin in EVENT_FACTORIES:
                cls.event_attrs.add(target.id)
            elif origin in THREADSAFE_FACTORIES:
                cls.safe_attrs.add(target.id)

    def _record_instance_attrs(self, cls: ClassInfo) -> None:
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = list(node.targets), node.value
                elif isinstance(node, ast.AnnAssign):
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    cls.inst_attrs.add(target.attr)
                    if isinstance(value, ast.Call):
                        kind = lock_kind_of_call(value, cls.module)
                        origin = cls.module.imports.origin(value.func)
                        if kind is not None:
                            cls.lock_attrs[target.attr] = kind
                        elif origin in EVENT_FACTORIES:
                            cls.event_attrs.add(target.attr)
                        elif origin in THREADSAFE_FACTORIES:
                            cls.safe_attrs.add(target.attr)

    def _resolve_attr_types(self) -> None:
        for cls in self.classes:
            for stmt in cls.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    found = self._classes_from_annotation(
                        stmt.annotation, cls.module
                    )
                    if found:
                        cls.attr_types.setdefault(stmt.target.id, set()).update(
                            found
                        )
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    target, value = _self_attr_assignment(node)
                    if target is None:
                        continue
                    cands: set[ClassInfo] = set()
                    if isinstance(node, ast.AnnAssign):
                        cands |= self._classes_from_annotation(
                            node.annotation, cls.module
                        )
                    if value is not None:
                        cands |= self._classes_from_expr(value, cls.module)
                    if cands:
                        cls.attr_types.setdefault(target, set()).update(cands)

    # -- type resolution ------------------------------------------------------

    def _named_class_candidates(
        self, name: str, origin: str | None, module: SourceModule
    ) -> set[ClassInfo]:
        cands = self.classes_by_name.get(name, [])
        if not cands:
            return set()
        if origin is not None:
            exact = [
                c for c in cands if f"{c.module.module}.{c.name}" == origin
            ]
            if exact:
                return set(exact)
            return set()
        local = [c for c in cands if c.module is module]
        if local:
            return set(local)
        return set(cands)

    def _call_class_candidates(
        self, call: ast.Call, module: SourceModule
    ) -> set[ClassInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return set()
        return self._named_class_candidates(
            name, module.imports.origin(func), module
        )

    def _classes_from_expr(
        self, expr: ast.expr, module: SourceModule
    ) -> set[ClassInfo]:
        """Classes constructed anywhere inside ``expr`` (RHS scan)."""
        out: set[ClassInfo] = set()
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                out |= self._call_class_candidates(sub, module)
        return out

    def _classes_from_annotation(
        self, ann: ast.expr, module: SourceModule
    ) -> set[ClassInfo]:
        out: set[ClassInfo] = set()
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return out
        for sub in ast.walk(ann):
            if isinstance(sub, (ast.Name, ast.Attribute)):
                name = sub.id if isinstance(sub, ast.Name) else sub.attr
                out |= self._named_class_candidates(
                    name, module.imports.origin(sub), module
                )
        return out

    def _prim_from_annotation(
        self, ann: ast.expr, module: SourceModule
    ) -> str | None:
        for sub in ast.walk(ann):
            if isinstance(sub, (ast.Name, ast.Attribute)):
                origin = module.imports.origin(sub)
                if origin == "threading.Event":
                    return "event"
                if origin == "threading.Condition":
                    return KIND_CONDITION
                if origin == "threading.Lock":
                    return KIND_LOCK
                if origin == "socket.socket":
                    return "socket"
        return None

    def type_env(self, info: FunctionInfo) -> TypeEnv:
        cached = self._env_cache.get(info.key)
        if cached is not None:
            return cached
        env = TypeEnv()
        args = info.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is None:
                continue
            found = self._classes_from_annotation(arg.annotation, info.module)
            if found:
                env.classes[arg.arg] = found
            prim = self._prim_from_annotation(arg.annotation, info.module)
            if prim is not None:
                env.prims[arg.arg] = prim
        if info.cls is not None:
            env.classes["self"] = {info.cls}
        for sub in ast.walk(info.node):
            if not (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
            ):
                continue
            name = sub.targets[0].id
            found = self._classes_from_expr(sub.value, info.module)
            if found:
                env.classes.setdefault(name, set()).update(found)
            if isinstance(sub.value, ast.Call):
                prim = prim_kind_of_call(sub.value, info.module)
                if prim is not None:
                    env.prims[name] = prim
        self._env_cache[info.key] = env
        return env

    def expr_classes(
        self, expr: ast.expr, info: FunctionInfo, env: TypeEnv
    ) -> set[ClassInfo]:
        """Candidate in-tree classes an expression evaluates to."""
        if isinstance(expr, ast.Name):
            return env.classes.get(expr.id, set())
        if isinstance(expr, ast.Attribute):
            out: set[ClassInfo] = set()
            for cls in self.expr_classes(expr.value, info, env):
                for owner in self.mro(cls):
                    found = owner.attr_types.get(expr.attr)
                    if found:
                        out |= found
                        break
            return out
        if isinstance(expr, ast.Call):
            return self._call_class_candidates(expr, info.module)
        return set()

    def expr_prim(
        self, expr: ast.expr, info: FunctionInfo, env: TypeEnv
    ) -> str | None:
        """Primitive kind (event/condition/socket/...) of an expression."""
        if isinstance(expr, ast.Name):
            return env.prims.get(expr.id)
        if isinstance(expr, ast.Attribute):
            for cls in self.expr_classes(expr.value, info, env):
                for owner in self.mro(cls):
                    if expr.attr in owner.event_attrs:
                        return "event"
                    if expr.attr in owner.lock_attrs:
                        return owner.lock_attrs[expr.attr]
        if isinstance(expr, ast.Call):
            return prim_kind_of_call(expr, info.module)
        return None

    # -- method resolution ----------------------------------------------------

    def base_classes(self, cls: ClassInfo) -> list[ClassInfo]:
        out: list[ClassInfo] = []
        for base in cls.node.bases:
            if isinstance(base, ast.Name):
                name = base.id
            elif isinstance(base, ast.Attribute):
                name = base.attr
            else:
                continue
            out.extend(
                self._named_class_candidates(
                    name, cls.module.imports.origin(base), cls.module
                )
            )
        return out

    def mro(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        queue: deque[ClassInfo] = deque([cls])
        seen: set[int] = set()
        while queue:
            cur = queue.popleft()
            if id(cur) in seen:
                continue
            seen.add(id(cur))
            yield cur
            queue.extend(self.base_classes(cur))

    def resolve_method(
        self, classes: Iterable[ClassInfo], attr: str
    ) -> list[FuncKey]:
        """First ``attr`` method up each candidate class's base chain."""
        out: list[FuncKey] = []
        for cls in classes:
            for owner in self.mro(cls):
                method = owner.methods.get(attr)
                if method is not None:
                    out.append(method.key)
                    break
        return out

    def lock_attr_kind(self, cls: ClassInfo, attr: str) -> str | None:
        for owner in self.mro(cls):
            kind = owner.lock_attrs.get(attr)
            if kind is not None:
                return kind
        return None

    # -- call-graph edges -----------------------------------------------------

    def resolve_call(
        self, call: ast.Call, info: FunctionInfo, env: TypeEnv
    ) -> list[FuncKey]:
        """Candidate callee keys for one call site."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_ref(func.id, info)
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                if info.cls is not None:
                    return self.resolve_method(
                        self.base_classes(info.cls), func.attr
                    )
                return []
            base = self.expr_classes(func.value, info, env)
            if base:
                return self.resolve_method(base, func.attr)
            if func.attr in GENERIC_ATTRS:
                return []
            return list(self.by_bare_name.get(func.attr, []))
        return []

    def _resolve_name_ref(self, name: str, info: FunctionInfo) -> list[FuncKey]:
        if name == "super":
            return []
        module = info.module
        local = (module.module, name)
        if local in self.functions:
            return [local]
        origin = module.imports.aliases.get(name)
        if origin is not None and "." in origin:
            target_mod, target_fn = origin.rsplit(".", 1)
            if (target_mod, target_fn) in self.functions:
                return [(target_mod, target_fn)]
            ctor = [
                c
                for c in self.classes_by_name.get(target_fn, [])
                if c.module.module == target_mod
            ]
            if ctor:
                return self.resolve_method(ctor, "__init__")
        local_cls = [
            c for c in self.classes_by_name.get(name, []) if c.module is module
        ]
        if local_cls:
            return self.resolve_method(local_cls, "__init__")
        return list(self.by_bare_name.get(name, []))

    def resolve_callable_ref(
        self, expr: ast.expr, info: FunctionInfo, env: TypeEnv
    ) -> list[FuncKey]:
        """A function *reference* (e.g. a ``Thread`` target), not a call."""
        if isinstance(expr, ast.Name):
            return self._resolve_name_ref(expr.id, info)
        if isinstance(expr, ast.Attribute):
            base = self.expr_classes(expr.value, info, env)
            if base:
                return self.resolve_method(base, expr.attr)
            if expr.attr in GENERIC_ATTRS:
                return []
            return list(self.by_bare_name.get(expr.attr, []))
        return []

    def property_loads(
        self, root: ast.AST, info: FunctionInfo, env: TypeEnv
    ) -> Iterator[FuncKey]:
        """Typed attribute loads under ``root`` that hit a property def."""
        call_funcs = {
            id(c.func) for c in ast.walk(root) if isinstance(c, ast.Call)
        }
        for sub in ast.walk(root):
            if not (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Load)
                and id(sub) not in call_funcs
            ):
                continue
            base = self.expr_classes(sub.value, info, env)
            if not base:
                continue
            for key in self.resolve_method(base, sub.attr):
                if self.functions[key].is_property:
                    yield key

    def callees(self, info: FunctionInfo) -> set[FuncKey]:
        env = self.type_env(info)
        out: set[FuncKey] = set()
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Call):
                out.update(self.resolve_call(sub, info, env))
        out.update(self.property_loads(info.node, info, env))
        return out

    # -- thread roots and reachability ---------------------------------------

    def _discover_roots(self) -> dict[str, list[FuncKey]]:
        groups: dict[str, list[FuncKey]] = {}
        mains = sorted(
            key
            for key, fn in self.functions.items()
            if fn.cls is None
            and (fn.node.name == "main" or fn.node.name.endswith("_main"))
        )
        if mains:
            groups[_MAIN_ROOT_GROUP] = mains
        handlers = sorted(
            method.key
            for cls in self.classes
            if self._is_http_handler(cls)
            for name, method in cls.methods.items()
            if name.startswith("do_")
        )
        if handlers:
            groups[_HTTP_ROOT_GROUP] = handlers
        for info in list(self.functions.values()):
            env: TypeEnv | None = None
            for sub in ast.walk(info.node):
                if not (
                    isinstance(sub, ast.Call)
                    and info.module.imports.origin(sub.func)
                    == "threading.Thread"
                ):
                    continue
                target = next(
                    (kw.value for kw in sub.keywords if kw.arg == "target"),
                    None,
                )
                if target is None:
                    continue
                env = env if env is not None else self.type_env(info)
                keys = self.resolve_callable_ref(target, info, env)
                if not keys:
                    continue
                if isinstance(target, ast.Attribute):
                    bare = target.attr
                elif isinstance(target, ast.Name):
                    bare = target.id
                else:
                    bare = "<target>"
                group = f"thread:{info.module.module}.{bare}"
                groups.setdefault(group, []).extend(keys)
        return groups

    def _is_http_handler(self, cls: ClassInfo) -> bool:
        for base in cls.node.bases:
            origin = cls.module.imports.origin(base)
            if origin in _HTTP_HANDLER_BASES:
                return True
            name = None
            if isinstance(base, ast.Name):
                name = base.id
            elif isinstance(base, ast.Attribute):
                name = base.attr
            if name == "BaseHTTPRequestHandler":
                return True
        return any(self._is_http_handler(b) for b in self.base_classes(cls))

    def reachable_from(self, roots: Iterable[FuncKey]) -> set[FuncKey]:
        seen: set[FuncKey] = set()
        queue: deque[FuncKey] = deque()
        for key in roots:
            if key in self.functions and key not in seen:
                seen.add(key)
                queue.append(key)
        while queue:
            key = queue.popleft()
            for nxt in self.callees(self.functions[key]):
                if nxt not in seen and nxt in self.functions:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    def group_reach(self, group: str) -> frozenset[FuncKey]:
        cached = self._reach_cache.get(group)
        if cached is None:
            roots = self.root_groups.get(group, [])
            cached = frozenset(self.reachable_from(roots))
            self._reach_cache[group] = cached
        return cached

    def groups_reaching(self, key: FuncKey) -> set[str]:
        return {
            group
            for group in self.root_groups
            if key in self.group_reach(group)
        }

    def is_multi_threaded(self, key: FuncKey) -> bool:
        """Whether ``key`` can run on more than one thread.

        The ``http-handler`` group alone is multi-threaded (the
        threading HTTP server runs each request on its own thread);
        otherwise two distinct root groups must reach the function.
        """
        groups = self.groups_reaching(key)
        return _HTTP_ROOT_GROUP in groups or len(groups) >= 2

    # -- misc -----------------------------------------------------------------

    def parent_map(self, info: FunctionInfo) -> dict[int, ast.AST]:
        cached = self._parent_cache.get(info.key)
        if cached is None:
            cached = {}
            for parent in ast.walk(info.node):
                for child in ast.iter_child_nodes(parent):
                    cached[id(child)] = parent
            self._parent_cache[info.key] = cached
        return cached


def _self_attr_assignment(
    node: ast.AST,
) -> tuple[str | None, ast.expr | None]:
    """(attr, value) when ``node`` assigns ``self.<attr>``; else (None, None)."""
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target: ast.expr = node.targets[0]
        value: ast.expr | None = node.value
    elif isinstance(node, ast.AnnAssign):
        target, value = node.target, node.value
    else:
        return None, None
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr, value
    return None, None
