"""Span-based run tracing: JSON-lines event streams for forensics.

A :class:`Tracer` records what the execution layer *did* — which tasks
ran, how many attempts each took, where retries/timeouts/pool rebuilds
happened — as a flat stream of JSON-lines events that reconstructs into a
span tree.  The taxonomy (see ``docs/observability.md``)::

    batch                       one engine invocation / replay campaign
    ├── cache-lookup            one content-address probe (hit or miss)
    └── task                    one experiment / shard, first dispatch → final verdict
        └── attempt             one execution attempt (submit → settle)

plus point events (``retry``, ``timeout``, ``pool_rebuild``, ``degraded``,
``cache_quarantine``) that hang off their enclosing span.

Design constraints, in order:

* **Zero cost when disabled.**  Call sites hold ``tracer: Tracer | None``
  and guard every emission with ``if tracer is not None`` — no null-object
  dispatch, no string formatting, nothing on the hot path.  The overhead
  bench (``benchmarks/test_bench_obs.py``) pins this below the 2% budget.
* **Deterministic ordering.**  Span ids are assigned from a sequential
  counter in emission order, so a serial run (``jobs=1``) emits the exact
  same event sequence every time; with an injected ``clock`` the output is
  byte-identical across runs (the determinism test does exactly this).
* **Separate channel.**  Events go to their own sink (``--trace-out``),
  never stdout/stderr, so report output is byte-identical with tracing on
  or off.

Event schema (one JSON object per line, keys always sorted)::

    {"ev": "B", "name": ..., "span": id, "parent": id|null, "t": rel, ...attrs}
    {"ev": "E", "name": ..., "span": id, "t": rel, "dur": seconds, ...attrs}
    {"ev": "P", "name": ..., "parent": id|null, "t": rel, ...attrs}

``t`` is seconds since the tracer was created, measured on the monotonic
clock (never ``time.time()``); attribute keys are flattened into the event
object and must not collide with the reserved keys above.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from collections.abc import Callable, Iterator
from pathlib import Path
from typing import Any, IO

#: Event-type tags: span begin / span end / point event.
EVENT_BEGIN = "B"
EVENT_END = "E"
EVENT_POINT = "P"

#: Keys owned by the tracer; attribute names must avoid them.
RESERVED_KEYS = frozenset({"ev", "name", "span", "parent", "t", "dur"})


class SpanHandle:
    """An open span: pass it back to :meth:`Tracer.end` (or use
    :meth:`Tracer.span` and let the context manager do it)."""

    __slots__ = ("id", "name", "parent_id", "t0")

    def __init__(
        self, id: int, name: str, parent_id: int | None, t0: float
    ) -> None:
        self.id = id
        self.name = name
        self.parent_id = parent_id
        self.t0 = t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanHandle(id={self.id}, name={self.name!r})"


class Tracer:
    """Emit a JSON-lines event stream to a file-like sink.

    ``sink`` needs only ``write(str)``; ``clock`` defaults to
    :func:`time.monotonic` and is injectable for byte-deterministic tests.
    ``counts`` tallies emitted event names so tests (and the CLI smoke)
    can cross-check trace contents against footer metrics without parsing
    the file.
    """

    def __init__(
        self,
        sink: IO[str],
        *,
        clock: Callable[[], float] = time.monotonic,
        _owns_sink: bool = False,
    ) -> None:
        self._sink = sink
        self._clock = clock
        self._t0 = clock()
        self._next_id = 1
        self._owns_sink = _owns_sink
        self._closed = False
        self.counts: dict[str, int] = {}

    @classmethod
    def to_path(cls, path: str | Path, **kwargs: Any) -> Tracer:
        """A tracer writing to ``path`` (closed by :meth:`close`)."""
        return cls(open(path, "w"), _owns_sink=True, **kwargs)

    # -- emission --------------------------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        self._sink.write(json.dumps(record, sort_keys=True) + "\n")

    def _attrs(self, record: dict[str, Any], attrs: dict[str, Any]) -> dict[str, Any]:
        if attrs:
            clash = RESERVED_KEYS.intersection(attrs)
            if clash:
                raise ValueError(
                    f"trace attribute(s) {sorted(clash)} collide with "
                    "reserved event keys"
                )
            record.update(attrs)
        return record

    def begin(
        self,
        name: str,
        parent: SpanHandle | None = None,
        **attrs: Any,
    ) -> SpanHandle:
        """Open a span; returns the handle :meth:`end` wants back."""
        t = self._clock()
        handle = SpanHandle(
            self._next_id, name, parent.id if parent is not None else None, t
        )
        self._next_id += 1
        self.counts[name] = self.counts.get(name, 0) + 1
        self._emit(
            self._attrs(
                {
                    "ev": EVENT_BEGIN,
                    "name": name,
                    "span": handle.id,
                    "parent": handle.parent_id,
                    "t": t - self._t0,
                },
                attrs,
            )
        )
        return handle

    def end(self, span: SpanHandle, **attrs: Any) -> None:
        """Close a span opened by :meth:`begin`."""
        t = self._clock()
        self._emit(
            self._attrs(
                {
                    "ev": EVENT_END,
                    "name": span.name,
                    "span": span.id,
                    "t": t - self._t0,
                    "dur": t - span.t0,
                },
                attrs,
            )
        )

    def event(
        self,
        name: str,
        parent: SpanHandle | None = None,
        **attrs: Any,
    ) -> None:
        """A point event (no duration) under ``parent``."""
        self.counts[name] = self.counts.get(name, 0) + 1
        self._emit(
            self._attrs(
                {
                    "ev": EVENT_POINT,
                    "name": name,
                    "parent": parent.id if parent is not None else None,
                    "t": self._clock() - self._t0,
                },
                attrs,
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        parent: SpanHandle | None = None,
        **attrs: Any,
    ) -> Iterator[SpanHandle]:
        """``with tracer.span("batch") as sp:`` — begin/end bracketing."""
        handle = self.begin(name, parent, **attrs)
        try:
            yield handle
        finally:
            self.end(handle)

    # -- lifecycle -------------------------------------------------------------------

    def flush(self) -> None:
        flush = getattr(self._sink, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        """Flush and (when the tracer opened the sink) close it; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.flush()
        if self._owns_sink:
            self._sink.close()

    def __enter__(self) -> Tracer:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_trace(path_or_text: str | object) -> list[dict[str, Any]]:
    """Parse a JSON-lines trace back into event dicts (tests, tooling).

    Accepts a path-like or raw text containing newline-separated events.
    """
    text = (
        path_or_text
        if isinstance(path_or_text, str) and "\n" in path_or_text
        else Path(path_or_text).read_text()  # type: ignore[arg-type]
    )
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def span_tree(events: list[dict[str, Any]]) -> dict[int | None, list[dict[str, Any]]]:
    """Group begin-events by parent span id — the nesting structure."""
    children: dict[int | None, list[dict[str, Any]]] = {}
    for ev in events:
        if ev.get("ev") == EVENT_BEGIN:
            children.setdefault(ev.get("parent"), []).append(ev)
    return children
