"""Run manifests: everything needed to re-run a report byte-identically.

A :class:`RunManifest` is written alongside a report (``--manifest-out``
on both CLIs, or programmatically) and records the *inputs* of the run —
tool, resolved arguments, seed, cache directory, fault plan — plus the
environment (package version, python version, platform).  Feeding the
``args`` back to the same tool version reproduces the report bytes;
that is the contract the reproducibility tests pin down.

The wall-clock stamp is **injected** by the caller (one ``time.time()``
at CLI startup, or a fixed value in tests) — manifests never read the
clock themselves, so nothing here can leak wall-clock nondeterminism
into a hot path or a byte-comparison test.

Manifests are versioned ``repro.io`` documents (``kind: "run_manifest"``)
and round-trip through :func:`repro.io.save` / :func:`repro.io.load`.
"""

from __future__ import annotations

import platform as _platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .. import __version__ as PACKAGE_VERSION

MANIFEST_FORMAT_VERSION = 1
MANIFEST_KIND = "run_manifest"


@dataclass
class RunManifest:
    """The reproducibility record of one CLI (or programmatic) run."""

    tool: str
    args: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    cache_dir: str | None = None
    fault_plan: dict[str, Any] | None = None
    #: Durability story of the run, when one applies: which checkpoint or
    #: journal it used and how much previously completed work it reused
    #: (e.g. ``{"checkpoint": ..., "resumed_shards": 3}``).  ``None`` for
    #: runs that started cold with no durability layer engaged.
    recovery: dict[str, Any] | None = None
    package_version: str = PACKAGE_VERSION
    python_version: str = ""
    platform: str = ""
    created_at: float | None = None  # injected wall clock (unix seconds)

    @classmethod
    def create(
        cls,
        tool: str,
        args: dict[str, Any],
        *,
        seed: int | None = None,
        cache_dir: str | Path | None = None,
        fault_plan: Any | None = None,
        recovery: dict[str, Any] | None = None,
        now: float | None = None,
    ) -> RunManifest:
        """Build a manifest for the current interpreter/environment.

        ``now`` is the injected wall-clock stamp (unix seconds); pass
        ``time.time()`` once at startup, or a constant in tests.
        ``fault_plan`` accepts a :class:`~repro.engine.faults.FaultPlan`
        or an already-encoded dict.
        """
        plan_doc: dict[str, Any] | None = None
        if fault_plan is not None:
            if hasattr(fault_plan, "specs"):
                plan_doc = {"faults": [s.to_dict() for s in fault_plan.specs]}
            else:
                plan_doc = dict(fault_plan)
        return cls(
            tool=tool,
            args=dict(args),
            seed=seed,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
            fault_plan=plan_doc,
            recovery=dict(recovery) if recovery is not None else None,
            package_version=PACKAGE_VERSION,
            python_version=sys.version.split()[0],
            platform=_platform.platform(),
            created_at=now,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": MANIFEST_FORMAT_VERSION,
            "kind": MANIFEST_KIND,
            "tool": self.tool,
            "args": dict(self.args),
            "seed": self.seed,
            "cache_dir": self.cache_dir,
            "fault_plan": self.fault_plan,
            "recovery": self.recovery,
            "package_version": self.package_version,
            "python_version": self.python_version,
            "platform": self.platform,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> RunManifest:
        if not isinstance(data, dict) or data.get("kind") != MANIFEST_KIND:
            raise ValueError("not a run-manifest document")
        if data.get("version") != MANIFEST_FORMAT_VERSION:
            raise ValueError(
                f"unsupported run-manifest version {data.get('version')!r}"
            )
        return cls(
            tool=str(data["tool"]),
            args=dict(data.get("args", {})),
            seed=data.get("seed"),
            cache_dir=data.get("cache_dir"),
            fault_plan=data.get("fault_plan"),
            recovery=data.get("recovery"),
            package_version=str(data.get("package_version", "")),
            python_version=str(data.get("python_version", "")),
            platform=str(data.get("platform", "")),
            created_at=data.get("created_at"),
        )
