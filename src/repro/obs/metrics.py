"""A small metrics registry: counters, gauges, histograms; JSON + Prometheus.

The engine and replay stacks publish their operational story here —
cache hits/misses/quarantines/prunes, retries, timeouts, pool rebuilds,
degradation, per-task wall times — and the registry exports it in two
machine-readable shapes:

* :meth:`MetricsRegistry.to_dict` — versioned plain JSON, round-trips
  through :meth:`MetricsRegistry.from_dict`;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` / samples), parseable back with
  :func:`parse_prometheus_text` for round-trip tests and scrapers.

Metric names follow Prometheus conventions (``qbss_*``, ``_total`` for
counters, ``_seconds`` / ``_bytes`` units); the full name taxonomy lives
in ``docs/observability.md``.  Labels are plain string pairs; a metric
identity is ``(name, sorted(labels))``.

Nothing here is threaded; the registry lives in the parent process and is
written to once per run (plus cheap increments on the cache path), so a
plain dict is all the machinery needed.
"""

from __future__ import annotations

import json
import math
import re
from collections.abc import Iterable, Iterator
from typing import Any

METRICS_FORMAT_VERSION = 1

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(items: LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc by {amount})")
        self.value += amount

    def samples(self, name: str, labels: LabelItems) -> list[tuple[str, LabelItems, float]]:
        return [(name, labels, self.value)]

    def state(self) -> Any:
        return self.value

    def restore(self, state: Any) -> None:
        self.value = float(state)


class Gauge:
    """A value that can go anywhere (peak residency, degraded flag, ...)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def samples(self, name: str, labels: LabelItems) -> list[tuple[str, LabelItems, float]]:
        return [(name, labels, self.value)]

    def state(self) -> Any:
        return self.value

    def restore(self, state: Any) -> None:
        self.value = float(state)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: ``le`` bounds)."""

    kind = "histogram"
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self.counts = [0] * len(bounds)  # per-bound non-cumulative tallies
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def samples(self, name: str, labels: LabelItems) -> list[tuple[str, LabelItems, float]]:
        out: list[tuple[str, LabelItems, float]] = []
        cumulative = 0
        for bound, tally in zip(self.buckets, self.counts):
            cumulative += tally
            out.append(
                (f"{name}_bucket", labels + (("le", _format_value(bound)),), float(cumulative))
            )
        out.append((f"{name}_bucket", labels + (("le", "+Inf"),), float(self.count)))
        out.append((f"{name}_sum", labels, self.sum))
        out.append((f"{name}_count", labels, float(self.count)))
        return out

    def state(self) -> Any:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def restore(self, state: Any) -> None:
        self.buckets = tuple(float(b) for b in state["buckets"])
        self.counts = [int(c) for c in state["counts"]]
        self.sum = float(state["sum"])
        self.count = int(state["count"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of named, labelled metrics.

    ``registry.counter("qbss_cache_lookups_total", result="hit").inc()`` —
    the first call with a given ``(name, labels)`` creates the series, later
    calls return the same object.  A name is bound to one metric kind and
    one help string; conflicting re-registration raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, LabelItems], Any] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    # -- registration ----------------------------------------------------------------

    def _get(
        self,
        cls: type,
        name: str,
        help: str,
        labels: dict[str, str],
        **kwargs: Any,
    ) -> Any:
        if not _NAME_RE.fullmatch(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.fullmatch(label):
                raise ValueError(f"invalid label name {label!r}")
        bound = self._kinds.get(name)
        if bound is not None and bound != cls.kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {bound}, "
                f"not a {cls.kind}"
            )
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = cls(**kwargs)
            self._series[key] = series
            self._kinds[name] = cls.kind
            if help:
                self._help[name] = help
        elif help and name not in self._help:
            self._help[name] = help
        return series

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- introspection ---------------------------------------------------------------

    def value(self, name: str, **labels: str) -> float | None:
        """The current value of a counter/gauge series, or ``None``."""
        series = self._series.get((name, _label_key(labels)))
        return None if series is None else getattr(series, "value", None)

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._series))

    # -- JSON export -----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        series = [
            {
                "name": name,
                "labels": {k: v for k, v in labels},
                "kind": self._kinds[name],
                "state": metric.state(),
            }
            for (name, labels), metric in sorted(self._series.items())
        ]
        return {
            "version": METRICS_FORMAT_VERSION,
            "kind": "metrics_snapshot",
            "help": dict(sorted(self._help.items())),
            "series": series,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> MetricsRegistry:
        if not isinstance(data, dict) or data.get("kind") != "metrics_snapshot":
            raise ValueError("not a metrics snapshot document")
        if data.get("version") != METRICS_FORMAT_VERSION:
            raise ValueError(
                f"unsupported metrics version {data.get('version')!r}"
            )
        registry = cls()
        for item in data.get("series", []):
            metric_cls = _KINDS[item["kind"]]
            series = registry._get(
                metric_cls,
                item["name"],
                data.get("help", {}).get(item["name"], ""),
                dict(item.get("labels", {})),
            )
            series.restore(item["state"])
        return registry

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- Prometheus text export ------------------------------------------------------

    def to_prometheus(self) -> str:
        """The text exposition format, deterministically ordered."""
        by_name: dict[str, list[tuple[LabelItems, Any]]] = {}
        for (name, labels), metric in self._series.items():
            by_name.setdefault(name, []).append((labels, metric))
        lines: list[str] = []
        for name in sorted(by_name):
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            samples: list[tuple[str, LabelItems, float]] = []
            for labels, metric in sorted(by_name[name]):
                samples.extend(metric.samples(name, labels))
            for sample_name, sample_labels, value in samples:
                lines.append(
                    f"{sample_name}{_format_labels(sample_labels)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict[tuple[str, LabelItems], float]:
    """Parse exposition text back into ``{(name, labels): value}``.

    Covers what :meth:`MetricsRegistry.to_prometheus` emits (and ordinary
    scrape payloads); used by the round-trip tests and handy for tooling.
    """
    out: dict[tuple[str, LabelItems], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"cannot parse metrics line {line!r}")
        labels: list[tuple[str, str]] = []
        if m.group("labels"):
            for k, v in _LABEL_PAIR_RE.findall(m.group("labels")):
                labels.append(
                    (k, v.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\"))
                )
        raw = m.group("value")
        value = math.inf if raw == "+Inf" else (-math.inf if raw == "-Inf" else float(raw))
        out[(m.group("name"), tuple(sorted(labels)))] = value
    return out


def write_metrics(registry: MetricsRegistry, path: str | Path) -> str:
    """Write a registry to ``path``; format follows the extension.

    ``.prom`` / ``.txt`` get Prometheus text, anything else the JSON
    snapshot.  Returns the format written (``"prometheus"`` | ``"json"``).
    """
    from pathlib import Path

    path = Path(path)
    if path.suffix.lower() in (".prom", ".txt"):
        path.write_text(registry.to_prometheus())
        return "prometheus"
    path.write_text(registry.to_json() + "\n")
    return "json"
