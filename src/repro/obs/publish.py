"""Publishers: one place where engine/replay results become metric series.

The execution layer keeps its own structured result types
(:class:`~repro.engine.runner.EngineResult`,
:class:`~repro.traces.replay.ReplayMetrics`); these helpers map them onto
the registry's name taxonomy so the CLI footers, the JSON/Prometheus
export and the trace stream all describe the same numbers.  Cache
hit/miss/quarantine/prune series are *not* published here — the
:class:`~repro.engine.cache.ResultCache` increments those live when a
registry is threaded into it, so a long campaign can be scraped mid-run.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

#: Wall-time histogram buckets for experiment/shard execution (seconds).
WALL_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0)


def publish_engine_result(registry: MetricsRegistry, result: Any) -> None:
    """Publish an :class:`~repro.engine.runner.EngineResult`."""
    for run in result.runs:
        m = run.metrics
        registry.counter(
            "qbss_experiments_total",
            "Experiments evaluated, by final status.",
            status=m.status,
        ).inc()
        registry.counter(
            "qbss_rows_total", "Report rows produced by evaluated experiments."
        ).inc(m.rows)
        registry.histogram(
            "qbss_task_wall_seconds",
            "Wall time per experiment (all attempts).",
            buckets=WALL_BUCKETS,
        ).observe(m.wall_time)
        registry.counter(
            "qbss_task_attempts_total", "Execution attempts across all tasks."
        ).inc(m.attempts if not m.cache_hit else 0)
    _publish_recovery(registry, result)


def publish_replay(registry: MetricsRegistry, report: Any, metrics: Any) -> None:
    """Publish a replay's :class:`~repro.traces.replay.ReplayMetrics` +
    per-shard verdicts from the :class:`~repro.traces.replay.ReplayReport`."""
    for shard in report.shards:
        registry.counter(
            "qbss_replay_shards_total",
            "Replay shards evaluated, by final status.",
            status=str(shard.get("status", "ok")),
        ).inc()
    registry.counter(
        "qbss_replay_trace_jobs_total", "Trace jobs streamed through replay."
    ).inc(metrics.jobs)
    registry.gauge(
        "qbss_replay_peak_resident_jobs",
        "Peak jobs simultaneously resident (memory bound witness).",
    ).set(metrics.peak_resident_jobs)
    registry.gauge(
        "qbss_replay_wall_seconds", "Wall time of the whole replay."
    ).set(metrics.wall_time)
    publish_skipped(registry, report.skipped)
    _publish_recovery(registry, metrics)


def publish_skipped(registry: MetricsRegistry, skipped: int) -> None:
    """Count parser-dropped trace records.

    Split out of :func:`publish_replay` because :func:`replay_trace` only
    learns the parser's tally after the inner :func:`replay_jobs` call has
    published — it tops the counter up with the late-arriving amount.
    """
    registry.counter(
        "qbss_replay_records_skipped_total",
        "Trace records dropped by the parser as unusable.",
    ).inc(skipped)


def _publish_recovery(registry: MetricsRegistry, stats: Any) -> None:
    """The shared recovery counters (engine result and replay metrics both
    carry ``retries`` / ``timeouts`` / ``pool_rebuilds`` / ``degraded``)."""
    registry.counter(
        "qbss_retries_total", "Transient-failure retries issued."
    ).inc(stats.retries)
    registry.counter(
        "qbss_timeouts_total", "Tasks cancelled at their deadline."
    ).inc(stats.timeouts)
    registry.counter(
        "qbss_pool_rebuilds_total", "Process pools replaced (crash or hang)."
    ).inc(stats.pool_rebuilds)
    registry.gauge(
        "qbss_degraded", "1 when execution degraded to in-process serial."
    ).set(1.0 if stats.degraded else 0.0)
