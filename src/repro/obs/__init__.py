"""Structured observability: run tracing, metrics export, run manifests.

``repro.obs`` is the forensic layer of the engine and replay stacks
(``docs/observability.md``).  Three independent pieces:

* :class:`Tracer` — span-based JSON-lines run traces (``--trace-out``),
  nested batch → task → attempt → cache-lookup, zero-cost when disabled;
* :class:`MetricsRegistry` — counters/gauges/histograms published by the
  cache, the hardened driver and both report paths, exportable as JSON or
  Prometheus text (``--metrics-out``);
* :class:`RunManifest` — the reproducibility record written alongside a
  report (``--manifest-out``), round-tripping through :mod:`repro.io`.

Quick start::

    from repro.engine import run_experiments
    from repro.obs import MetricsRegistry, Tracer

    registry = MetricsRegistry()
    with Tracer.to_path("run.trace.jsonl") as tracer:
        result = run_experiments(["rho"], tracer=tracer, metrics=registry)
    print(registry.to_prometheus())
"""

from .manifest import MANIFEST_FORMAT_VERSION, MANIFEST_KIND, RunManifest
from .metrics import (
    DEFAULT_BUCKETS,
    METRICS_FORMAT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
    write_metrics,
)
from .publish import publish_engine_result, publish_replay
from .trace import (
    EVENT_BEGIN,
    EVENT_END,
    EVENT_POINT,
    SpanHandle,
    Tracer,
    read_trace,
    span_tree,
)

__all__ = [
    "MANIFEST_FORMAT_VERSION",
    "MANIFEST_KIND",
    "RunManifest",
    "DEFAULT_BUCKETS",
    "METRICS_FORMAT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
    "write_metrics",
    "publish_engine_result",
    "publish_replay",
    "EVENT_BEGIN",
    "EVENT_END",
    "EVENT_POINT",
    "SpanHandle",
    "Tracer",
    "read_trace",
    "span_tree",
]
