"""Exact minimax analysis of common-window QBSS policies.

How far from the *best possible* deterministic algorithm is CRCD?  For the
common release / common deadline setting the question is finite: a
two-phase algorithm commits to

* a query set ``Q`` (queries run in phase 1),
* the phase split ``x`` (phase 1 is ``(0, xD]``),
* the fraction ``lam`` of un-queried workload executed in phase 1,

runs each phase at its constant optimal speed, and the adversary then picks
the exact loads ``w* in [0, w]^Q`` maximising the energy ratio against the
clairvoyant optimum (for un-queried jobs the adversary sets ``w* = 0``,
minimising the optimum).  CRCD is the point ``(Q = golden set, x = 1/2,
lam = 1/2)`` of this design space.

:func:`minimax_common_window` enumerates the design space on grids and the
adversary on per-job grids (vectorised), returning the exact (up to grid
resolution) minimax value and the optimal policy; the ``minimax``
experiment compares it against CRCD's value on the same instances.

Complexity is exponential in the number of jobs — intended for n <= 4.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np


@dataclass(frozen=True)
class CommonWindowJob:
    """A QBSS job in the normalized common window setting (window (0, D])."""

    query_cost: float
    work_upper: float

    def __post_init__(self) -> None:
        if not 0 < self.query_cost <= self.work_upper:
            raise ValueError("need 0 < c <= w")


@dataclass
class MinimaxResult:
    """The solved game: optimal policy and its guaranteed ratio."""

    value: float
    query_set: tuple[int, ...]
    x: float
    lam: float
    worst_wstar: tuple[float, ...]


def _policy_value(
    jobs: Sequence[CommonWindowJob],
    queried: Sequence[bool],
    x: float,
    lam: float,
    alpha: float,
    wstar_grids: list[np.ndarray],
    d: float = 1.0,
) -> tuple[float, tuple[float, ...]]:
    """Adversary's best response to one policy: (worst ratio, argmax w*)."""
    q_idx = [i for i, q in enumerate(queried) if q]
    a_idx = [i for i, q in enumerate(queried) if not q]

    c_q = sum(jobs[i].query_cost for i in q_idx)
    w_a = sum(jobs[i].work_upper for i in a_idx)
    # un-queried jobs: adversary sets w* = 0, so the optimum pays c_j
    opt_a = sum(
        min(jobs[i].work_upper, jobs[i].query_cost) for i in a_idx
    )

    s1 = (c_q + lam * w_a) / (x * d)

    if not q_idx:
        s2 = ((1 - lam) * w_a) / ((1 - x) * d)
        energy = x * d * s1**alpha + (1 - x) * d * s2**alpha
        opt = d * (opt_a / d) ** alpha
        return (energy / opt if opt > 0 else np.inf), ()

    # enumerate the adversary's grid over the queried jobs (vectorised)
    grids = [wstar_grids[i] for i in q_idx]
    mesh = np.meshgrid(*grids, indexing="ij")
    wstar_sum = sum(mesh)
    p_star_q = sum(
        np.minimum(jobs[i].work_upper, jobs[i].query_cost + mesh[k])
        for k, i in enumerate(q_idx)
    )
    s2 = (wstar_sum + (1 - lam) * w_a) / ((1 - x) * d)
    energy = x * d * s1**alpha + (1 - x) * d * s2**alpha
    opt = d * ((p_star_q + opt_a) / d) ** alpha
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(opt > 0, energy / opt, np.inf)
    flat = int(np.argmax(ratio))
    idx = np.unravel_index(flat, ratio.shape)
    worst = tuple(float(grids[k][idx[k]]) for k in range(len(q_idx)))
    return float(ratio[idx]), worst


def minimax_common_window(
    jobs: Sequence[CommonWindowJob],
    alpha: float,
    x_grid: Sequence[float] | None = None,
    lam_grid: Sequence[float] | None = None,
    wstar_points: int = 9,
) -> MinimaxResult:
    """Solve the common-window minimax game on grids (see module docstring)."""
    if not jobs:
        raise ValueError("need at least one job")
    if len(jobs) > 6:
        raise ValueError("minimax enumeration is exponential; use n <= 6")
    xs = np.asarray(
        x_grid if x_grid is not None else np.linspace(0.05, 0.95, 19)
    )
    lams = np.asarray(
        lam_grid if lam_grid is not None else np.linspace(0.0, 1.0, 11)
    )
    wstar_grids = [
        np.unique(
            np.concatenate(
                [
                    np.linspace(0.0, j.work_upper, wstar_points),
                    [max(0.0, j.work_upper - j.query_cost)],
                ]
            )
        )
        for j in jobs
    ]

    best: MinimaxResult | None = None
    for queried in itertools.product([False, True], repeat=len(jobs)):
        lam_options = lams if not all(queried) else np.array([0.5])
        for x in xs:
            for lam in lam_options:
                value, worst = _policy_value(
                    jobs, queried, float(x), float(lam), alpha, wstar_grids
                )
                if best is None or value < best.value:
                    best = MinimaxResult(
                        value=value,
                        query_set=tuple(
                            i for i, q in enumerate(queried) if q
                        ),
                        x=float(x),
                        lam=float(lam),
                        worst_wstar=worst,
                    )
    assert best is not None
    return best


def crcd_policy_value(
    jobs: Sequence[CommonWindowJob],
    alpha: float,
    wstar_points: int = 9,
) -> tuple[float, tuple[int, ...]]:
    """CRCD's point in the design space: golden query set, x = lam = 1/2."""
    from ..core.constants import PHI

    queried = [j.query_cost <= j.work_upper / PHI for j in jobs]
    wstar_grids = [
        np.unique(
            np.concatenate(
                [
                    np.linspace(0.0, j.work_upper, wstar_points),
                    [max(0.0, j.work_upper - j.query_cost)],
                ]
            )
        )
        for j in jobs
    ]
    value, _ = _policy_value(jobs, queried, 0.5, 0.5, alpha, wstar_grids)
    return value, tuple(i for i, q in enumerate(queried) if q)
