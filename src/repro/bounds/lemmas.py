"""Executable versions of the paper's lower-bound lemmas.

Each ``lemma*`` function builds the adversarial instance(s) from the proof
(or, where the proof is omitted in the conference version, a construction
we derived that achieves the stated bound — documented inline) and returns
both the claimed bound and the machinery to measure an algorithm against it.
The lower-bound bench (`benchmarks/test_bench_lower_bounds.py`) turns each
into a table row of claimed-vs-achieved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..core.constants import PHI
from ..core.instance import QBSSInstance
from ..core.job import Job
from ..core.qjob import QJob

Objective = Literal["energy", "max_speed"]


@dataclass(frozen=True)
class LemmaClaim:
    """A claimed lower bound, for reports."""

    lemma: str
    objective: Objective
    bound: float
    note: str = ""


# -- Lemma 4.1: never querying is unboundedly bad -----------------------------------


def lemma41_instance(eps: float, work: float = 1.0) -> QBSSInstance:
    """Single job with ``c = w* = eps * w``: skipping the query costs 1/(2 eps).

    The never-query algorithm runs ``w`` over the unit window while the
    optimum runs ``c + w* = 2 eps w``; the speed ratio is ``1 / (2 eps)``
    and the energy ratio its alpha-th power — both diverge as ``eps -> 0``.
    """
    if not 0 < eps < 0.5:
        raise ValueError(f"eps must be in (0, 0.5), got {eps}")
    return QBSSInstance(
        [QJob(0.0, 1.0, eps * work, work, eps * work, "L41")]
    )


def lemma41_expected_ratio(eps: float, alpha: float, objective: Objective) -> float:
    """The closed-form ratio of the never-query algorithm on that instance."""
    ratio = 1.0 / (2.0 * eps)
    return ratio**alpha if objective == "energy" else ratio


# -- Lemma 4.2: phi / phi^alpha, even in the oracle model ----------------------------


def lemma42_instance(wstar_if_query: bool) -> QBSSInstance:
    """The golden instance ``c = 1, w = phi``.

    The adversary answers a querying algorithm with ``w* = w`` (the query
    was wasted: ratio ``(c + w)/w = phi``) and a non-querying one with
    ``w* = 0`` (the query was a bargain: ratio ``w / c = phi``).  Either
    way the speed ratio is at least ``phi`` and the energy ratio
    ``phi^alpha`` — even when an oracle supplies the perfect split.
    """
    wstar = PHI if wstar_if_query else 0.0
    return QBSSInstance([QJob(0.0, 1.0, 1.0, PHI, wstar, "L42")])


def lemma42_bounds(alpha: float) -> tuple[float, float]:
    """``(max-speed bound, energy bound) = (phi, phi^alpha)``."""
    return PHI, PHI**alpha


# -- Lemma 4.3: 2 / 2^{alpha-1} for any deterministic algorithm ----------------------


def lemma43_params() -> tuple[float, float]:
    """The proof's instance: ``c = 1, w = 2`` on a unit window."""
    return 1.0, 2.0


def lemma43_bounds(alpha: float) -> tuple[float, float]:
    """``(max-speed bound, energy bound) = (2, 2^{alpha-1})``."""
    return 2.0, 2.0 ** (alpha - 1.0)


# -- Lemma 4.5: 3 / 3^{alpha-1} for equal-window algorithms --------------------------


def lemma45_instance(eps: float = 1e-4) -> QBSSInstance:
    """Two jobs driving any equal-window algorithm to ratio 3.

    The conference version omits the proof; this construction achieves the
    stated bound.  Job ``j = (0, 2]`` is queried (``c_j = eps``) and the
    adversary sets ``w*_j = w_j = 1``, trapping one unit of work in the
    second half ``(1, 2]``.  Job ``k = (1, 3]`` is queried (``c_k = 1``,
    ``w_k = phi^2`` so the golden rule fires) and the adversary sets
    ``w*_k = 0``, trapping one unit of *query* in the first half ``(1, 2]``.
    An equal-window algorithm therefore runs ~2 units of load inside the
    unit interval ``(1, 2]`` — speed >= 2 — while the clairvoyant spreads
    ``p*_j ~= 1`` over ``(0, 2]`` and ``p*_k ~= 1`` over ``(1, 3]`` at
    constant speed 2/3.  Speed ratio -> 3 and energy ratio
    ``2^alpha / (3 (2/3)^alpha) = 3^{alpha-1}`` as ``eps -> 0``.  Both the
    algorithm and the optimum query both jobs, matching the paper's remark.
    """
    if not 0 < eps < 0.5:
        raise ValueError(f"eps must be in (0, 0.5), got {eps}")
    j = QJob(0.0, 2.0, eps, 1.0, 1.0, "L45-j")
    k = QJob(1.0, 3.0, 1.0, PHI**2, 0.0, "L45-k")
    return QBSSInstance([j, k])


def lemma45_bounds(alpha: float) -> tuple[float, float]:
    """``(max-speed bound, energy bound) = (3, 3^{alpha-1})``."""
    return 3.0, 3.0 ** (alpha - 1.0)


def lemma45_equal_window_lower_bounds(
    eps: float, alpha: float
) -> tuple[float, float]:
    """Best-possible values of *any* equal-window algorithm on the instance.

    Any equal-window algorithm must run job j's revealed load in ``(1, 2]``
    and job k's query in ``(1, 2]`` (both windows' relevant halves), so its
    max speed is at least the YDS optimum of the derived half-window
    instance; we return the ratios of that relaxation — a valid lower bound
    on every equal-window algorithm, including smarter-than-ours ones.
    """
    from ..speed_scaling.yds import yds_profile
    from ..core.power import PowerFunction

    inst = lemma45_instance(eps)
    derived: list[Job] = []
    for q in inst:
        mid = q.midpoint
        derived.append(Job(q.release, mid, q.query_cost, q.id + ":q"))
        derived.append(Job(mid, q.deadline, q.work_true, q.id + ":w"))
    alg = yds_profile(derived)
    opt = yds_profile([q.clairvoyant_job() for q in inst])
    power = PowerFunction(alpha)
    return (
        alg.max_speed() / opt.max_speed(),
        alg.energy(power) / opt.energy(power),
    )


# -- Lemma 5.1: AVRQ is at least (2 alpha)^alpha -------------------------------------


def lemma51_tower_instance(
    levels: int, alpha: float, horizon: float = 1.0
) -> QBSSInstance:
    """A nested 'tower' family adapted from the classical AVR lower bound.

    Level ``i`` is a job whose window is ``(0, horizon * g^i]`` with
    ``g = (alpha-1)/alpha`` — windows shrink geometrically so the AVR
    densities pile up near time 0 like the ``t^{-1/alpha}`` worst case of
    Bansal et al.  Works are chosen so every level's *clairvoyant* density
    contributes equally to the optimum; the adversary sets ``c_i = w_i`` and
    ``w*_i = 0``, so AVRQ pays the full upper bound as a query crammed into
    half the window while the optimum pays ``min(w, c + 0) = w`` over the
    full window.  The measured AVRQ/OPT ratio grows with ``levels`` towards
    the ``(2 alpha)^alpha`` asymptotic of Lemma 5.1 (the constant is only
    reached in the limit; the bench reports the trajectory).
    """
    if levels < 1:
        raise ValueError("need at least one level")
    g = (alpha - 1.0) / alpha
    jobs = []
    for i in range(levels):
        d = horizon * g**i
        w = d ** (1.0 - 1.0 / alpha) - (d * g) ** (1.0 - 1.0 / alpha) if i < levels - 1 else d ** (1.0 - 1.0 / alpha)
        w = max(w, 1e-12)
        jobs.append(QJob(0.0, d, w, w, 0.0, f"L51-{i}"))
    return QBSSInstance(jobs)
