"""The three CRCD energy ratios of Section 4.2 (Theorems 4.6 and 4.8).

The paper compares, per alpha:

* ``rho_1 = 2^{alpha-1} phi^alpha``   (first analysis of Theorem 4.6),
* ``rho_2 = 2^alpha``                 (second analysis of Theorem 4.6),
* ``rho_3 = max_{r >= 1} min{f_1(r), f_2(r)}`` with
  ``f_1(r) = 2^{alpha-1} (1 + 1/r^alpha)`` and
  ``f_2(r) = 2^{alpha-1} phi^alpha [1 - alpha r^{alpha-1} / (r+1)^alpha]``
  (the refined Theorem 4.8, valid for ``alpha >= 2``),

and tabulates them for alpha in {1.25, 1.5, ..., 3}: rho_1 wins for
``alpha <= 1.44``, rho_2 for ``1.44 < alpha < 2`` and rho_3 for
``alpha >= 2``.  This module regenerates that table; the inner max-min is
solved numerically (``f_1`` is decreasing and ``f_2`` increasing in ``r``,
so the optimum sits at their crossing when it exists).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..core.constants import PHI

#: The alpha grid of the paper's in-text table (Sec. 4.2).
PAPER_ALPHA_GRID: list[float] = [1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0]

#: The rho values printed in the paper for that grid (0 = "not applicable",
#: the paper only defines rho_3 for alpha >= 2).
PAPER_RHO1: list[float] = [2.17, 2.91, 3.90, 5.23, 7.02, 9.41, 12.63, 16.94]
PAPER_RHO2: list[float] = [2.37, 2.82, 3.36, 4.0, 4.75, 5.65, 6.72, 8.0]
PAPER_RHO3: list[float] = [0.0, 0.0, 0.0, 2.76, 3.70, 5.25, 6.72, 8.0]


def rho1(alpha: float) -> float:
    """``2^{alpha-1} phi^alpha``."""
    return 2.0 ** (alpha - 1.0) * PHI**alpha


def rho2(alpha: float) -> float:
    """``2^alpha``."""
    return 2.0**alpha


def f1(r: float, alpha: float) -> float:
    """``2^{alpha-1} (1 + 1/r^alpha)`` — decreasing in ``r``."""
    return 2.0 ** (alpha - 1.0) * (1.0 + r**-alpha)


def f2(r: float, alpha: float) -> float:
    """``2^{alpha-1} phi^alpha [1 - alpha r^{alpha-1}/(r+1)^alpha]``."""
    return rho1(alpha) * (1.0 - alpha * r ** (alpha - 1.0) / (r + 1.0) ** alpha)


def rho3(alpha: float, r_max: float = 256.0) -> float:
    """``max_{r >= 1} min{f1(r), f2(r)}`` (Theorem 4.8, ``alpha >= 2``).

    ``f1`` decreases towards ``2^{alpha-1}`` while ``f2`` is *not* monotone
    (it dips before climbing to ``rho_1``), so the max-min is located with a
    dense geometric grid and polished with a bounded scalar optimisation.
    """
    if alpha < 2.0:
        raise ValueError("rho3 is only defined for alpha >= 2 (Theorem 4.8)")

    grid = np.geomspace(1.0, r_max, 20001)
    values = np.minimum(f1(grid, alpha), f2(grid, alpha))
    i = int(values.argmax())
    lo = grid[max(i - 1, 0)]
    hi = grid[min(i + 1, grid.size - 1)]
    res = optimize.minimize_scalar(
        lambda r: -min(f1(r, alpha), f2(r, alpha)),
        bounds=(lo, hi),
        method="bounded",
        options={"xatol": 1e-12},
    )
    return float(max(values[i], -res.fun))


def best_ratio(alpha: float) -> float:
    """The best CRCD guarantee at ``alpha``: ``min(rho1, rho2[, rho3])``."""
    candidates = [rho1(alpha), rho2(alpha)]
    if alpha >= 2.0:
        candidates.append(rho3(alpha))
    return min(candidates)


def best_regime(alpha: float) -> str:
    """Which rho is best at ``alpha`` ("rho1", "rho2" or "rho3")."""
    values = {"rho1": rho1(alpha), "rho2": rho2(alpha)}
    if alpha >= 2.0:
        values["rho3"] = rho3(alpha)
    return min(values, key=values.get)


@dataclass(frozen=True)
class RhoRow:
    """One column of the paper's rho table."""

    alpha: float
    rho1: float
    rho2: float
    rho3: float | None


def rho_table(alphas: list[float] | None = None) -> list[RhoRow]:
    """Regenerate the Section 4.2 table on ``alphas`` (paper grid default)."""
    rows = []
    for a in alphas or PAPER_ALPHA_GRID:
        rows.append(
            RhoRow(
                alpha=a,
                rho1=rho1(a),
                rho2=rho2(a),
                rho3=rho3(a) if a >= 2.0 else None,
            )
        )
    return rows
