"""The single-job adversarial game (Lemmas 4.1–4.3).

All of the paper's deterministic lower bounds are games on a single job
``(r=0, d=1, c, w, w*)``: the algorithm commits to a decision (query or not,
and a split ``x``) seeing only ``(c, w)``; the adversary then picks the
worst ``w* in [0, w]``.  This module plays that game two ways:

* **closed form** — :func:`game_value` evaluates a decision analytically;
* **against real code** — :func:`adversarial_ratio` probes an actual
  algorithm (e.g. :func:`repro.qbss.crcd.crcd`) with a throwaway instance,
  reads the decision it logged, picks the adversarial ``w*``, re-runs the
  algorithm on the real instance, and measures the realised ratio against
  the clairvoyant optimum.  This is the strongest form of reproduction: the
  lower bound is exercised against the shipped implementation, not a model
  of it.

Deterministic algorithms decide from the known attributes only, so the probe
run and the final run take identical decisions; this is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Literal

import numpy as np

from ..core.instance import QBSSInstance
from ..core.power import PowerFunction
from ..core.qjob import QJob
from ..qbss.clairvoyant import clairvoyant
from ..qbss.result import QBSSResult

Objective = Literal["energy", "max_speed"]

Algorithm = Callable[[QBSSInstance], QBSSResult]


# -- closed-form game --------------------------------------------------------------


def algorithm_value(
    query: bool,
    x: float | None,
    c: float,
    w: float,
    wstar: float,
    alpha: float,
    objective: Objective,
) -> float:
    """Objective value of a committed decision on the unit-window job.

    No query: constant speed ``w``.  Query with split ``x``: speed ``c/x``
    on ``(0, x]`` and ``w*/(1-x)`` on ``(x, 1]`` (constant speeds are optimal
    within each part by convexity).
    """
    if not query:
        return w**alpha if objective == "energy" else w
    if x is None or not 0 < x < 1:
        raise ValueError(f"query decision needs x in (0,1), got {x}")
    s1 = c / x
    s2 = wstar / (1.0 - x)
    if objective == "energy":
        return x * s1**alpha + (1.0 - x) * s2**alpha
    return max(s1, s2)


def optimal_value(
    c: float, w: float, wstar: float, alpha: float, objective: Objective
) -> float:
    """Clairvoyant value: constant speed ``p* = min(w, c + w*)``."""
    p = min(w, c + wstar)
    return p**alpha if objective == "energy" else p


def game_value(
    query: bool,
    x: float | None,
    c: float,
    w: float,
    alpha: float,
    objective: Objective,
    grid: int = 257,
) -> tuple[float, float]:
    """Adversary's best response: ``(worst ratio, maximising w*)``.

    The ratio is piecewise monotone in ``w*`` with kinks at ``w* = w - c``
    (where the optimum saturates); extremes plus a safety grid are checked.
    """
    candidates: list[float] = [0.0, w, max(0.0, w - c)]
    candidates.extend(np.linspace(0.0, w, grid))
    best_ratio, best_wstar = -1.0, 0.0
    for ws in candidates:
        opt = optimal_value(c, w, ws, alpha, objective)
        if opt <= 0:
            continue
        ratio = algorithm_value(query, x, c, w, ws, alpha, objective) / opt
        if ratio > best_ratio:
            best_ratio, best_wstar = ratio, float(ws)
    return best_ratio, best_wstar


def best_deterministic_decision(
    c: float, w: float, alpha: float, objective: Objective, x_grid: int = 257
) -> tuple[float, bool, float | None]:
    """The decision minimising the worst-case ratio: ``(value, query, x)``.

    Searching over "no query" and a grid of split points; this is the
    benchmark for how well *any* deterministic algorithm can do on the
    single job — Lemma 4.3 says the value is at least 2 (max speed) /
    ``2^{alpha-1}`` (energy) for the instance ``c=1, w=2``.
    """
    best = (game_value(False, None, c, w, alpha, objective)[0], False, None)
    for x in np.linspace(1e-3, 1 - 1e-3, x_grid):
        val = game_value(True, float(x), c, w, alpha, objective)[0]
        if val < best[0]:
            best = (val, True, float(x))
    return best


# -- the game against real implementations --------------------------------------------


@dataclass
class AdversarialOutcome:
    """Result of running the adversary against a real algorithm."""

    ratio: float
    wstar: float
    queried: bool
    split: float | None
    objective: Objective


def _measure(result: QBSSResult, alpha: float, objective: Objective) -> float:
    if objective == "energy":
        return result.energy(PowerFunction(alpha))
    return result.max_speed()


def adversarial_ratio(
    algorithm: Algorithm,
    c: float,
    w: float,
    alpha: float,
    objective: Objective,
    deadline: float = 1.0,
    grid: int = 33,
) -> AdversarialOutcome:
    """Play the single-job game against a real algorithm implementation.

    1. probe with ``w* = 0`` and read the logged decision;
    2. for every candidate ``w*`` (extremes, kink, grid), re-run the
       algorithm on the instance with that exact load and measure the true
       ratio versus the clairvoyant optimum;
    3. return the worst case, asserting the decision never changed (it
       cannot, for a deterministic algorithm that honours the information
       constraints — a change would mean ``w*`` leaked).
    """
    def make(wstar: float) -> QBSSInstance:
        return QBSSInstance([QJob(0.0, deadline, c, w, wstar, "adv")])

    probe = algorithm(make(0.0))
    decision = probe.decisions["adv"]

    candidates: list[float] = sorted(
        {0.0, w, max(0.0, w - c), *np.linspace(0.0, w, grid)}
    )
    worst = AdversarialOutcome(-1.0, 0.0, decision.query, decision.split, objective)
    for ws in candidates:
        inst = make(float(ws))
        res = algorithm(inst)
        again = res.decisions["adv"]
        if (again.query, again.split) != (decision.query, decision.split):
            raise AssertionError(
                f"algorithm changed its decision with w*: {decision} -> {again}; "
                "the exact load leaked before the query completed"
            )
        opt = clairvoyant(inst, alpha=alpha)
        denom = (
            opt.energy_value if objective == "energy" else opt.max_speed_value
        )
        if denom <= 0:
            continue
        ratio = _measure(res, alpha, objective) / denom
        if ratio > worst.ratio:
            worst = AdversarialOutcome(
                float(ratio), float(ws), decision.query, decision.split, objective
            )
    return worst
