"""Closed-form bounds from the paper, as functions of alpha.

Everything in Table 1 (plus the classical bounds the QBSS results build on)
lives here so benches, tests and docs never re-type a formula.  Names follow
``<algorithm>_<lb|ub>_<objective>``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable

from ..core.constants import PHI


def _check_alpha(alpha: float) -> None:
    if not alpha > 1.0:
        raise ValueError(f"alpha must be > 1, got {alpha}")


# -- classical speed scaling (substrate) -------------------------------------------


def avr_ub_energy(alpha: float) -> float:
    """AVR is ``2^{alpha-1} alpha^alpha``-competitive (Yao et al. 1995)."""
    _check_alpha(alpha)
    return 2.0 ** (alpha - 1.0) * alpha**alpha


def oa_ub_energy(alpha: float) -> float:
    """OA is exactly ``alpha^alpha``-competitive (Bansal et al. 2007)."""
    _check_alpha(alpha)
    return alpha**alpha


def bkp_ub_energy(alpha: float) -> float:
    """BKP is ``2 (alpha/(alpha-1))^alpha e^alpha``-competitive."""
    _check_alpha(alpha)
    return 2.0 * (alpha / (alpha - 1.0)) ** alpha * math.e**alpha


BKP_UB_MAX_SPEED: float = math.e  # e-competitive, optimal deterministically


def avr_m_ub_energy(alpha: float) -> float:
    """AVR(m) is ``2^{alpha-1} alpha^alpha + 1``-competitive (Albers et al.)."""
    _check_alpha(alpha)
    return 2.0 ** (alpha - 1.0) * alpha**alpha + 1.0


# -- QBSS offline (Table 1, top half) ------------------------------------------------


def oracle_lb_energy(alpha: float) -> float:
    """Lemma 4.2: no ``(phi^alpha - eps)``-approximation, even with an oracle."""
    _check_alpha(alpha)
    return PHI**alpha


ORACLE_LB_MAX_SPEED: float = PHI  # Lemma 4.2


def deterministic_lb_energy(alpha: float) -> float:
    """Lemma 4.3: no ``(2^{alpha-1} - eps)``-approximation deterministically."""
    _check_alpha(alpha)
    return 2.0 ** (alpha - 1.0)


DETERMINISTIC_LB_MAX_SPEED: float = 2.0  # Lemma 4.3


def offline_lb_energy(alpha: float) -> float:
    """Table 1's offline row: ``max{phi^alpha, 2^{alpha-1}}``."""
    return max(oracle_lb_energy(alpha), deterministic_lb_energy(alpha))


def equal_window_lb_energy(alpha: float) -> float:
    """Lemma 4.5: equal-window algorithms lose at least ``3^{alpha-1}``."""
    _check_alpha(alpha)
    return 3.0 ** (alpha - 1.0)


EQUAL_WINDOW_LB_MAX_SPEED: float = 3.0  # Lemma 4.5


def randomized_lb_energy(alpha: float) -> float:
    """Lemma 4.4: randomized algorithms lose at least ``(1 + phi^alpha)/2``."""
    _check_alpha(alpha)
    return 0.5 * (1.0 + PHI**alpha)


RANDOMIZED_LB_MAX_SPEED: float = 4.0 / 3.0  # Lemma 4.4


def crcd_ub_energy(alpha: float) -> float:
    """Theorem 4.6: CRCD is ``min{2^{alpha-1} phi^alpha, 2^alpha}``-approximate."""
    _check_alpha(alpha)
    return min(2.0 ** (alpha - 1.0) * PHI**alpha, 2.0**alpha)


CRCD_UB_MAX_SPEED: float = 2.0  # Theorem 4.6


def crp2d_ub_energy(alpha: float) -> float:
    """Theorem 4.13: CRP2D is ``(4 phi)^alpha``-approximate for energy."""
    _check_alpha(alpha)
    return (4.0 * PHI) ** alpha


def crad_ub_energy(alpha: float) -> float:
    """Corollary 4.15: CRAD is ``(8 phi)^alpha``-approximate for energy."""
    _check_alpha(alpha)
    return (8.0 * PHI) ** alpha


# -- QBSS online (Table 1, bottom half) -----------------------------------------------


def avrq_lb_energy(alpha: float) -> float:
    """Lemma 5.1: AVRQ is at least ``(2 alpha)^alpha``-competitive."""
    _check_alpha(alpha)
    return (2.0 * alpha) ** alpha


def avrq_ub_energy(alpha: float) -> float:
    """Corollary 5.3: AVRQ is ``2^{2 alpha - 1} alpha^alpha``-competitive."""
    _check_alpha(alpha)
    return 2.0**alpha * avr_ub_energy(alpha)


def bkpq_lb_energy(alpha: float) -> float:
    """Table 1: BKPQ loses at least ``3^{alpha-1}`` (equal-window bound)."""
    return equal_window_lb_energy(alpha)


def bkpq_ub_energy(alpha: float) -> float:
    """Corollary 5.5: ``(2+phi)^alpha * 2 (alpha/(alpha-1))^alpha e^alpha``."""
    _check_alpha(alpha)
    return (2.0 + PHI) ** alpha * bkp_ub_energy(alpha)


def bkpq_ub_max_speed() -> float:
    """Corollary 5.5: BKPQ is ``(2 + phi) e``-competitive for max speed."""
    return (2.0 + PHI) * math.e


def avrq_m_lb_energy(alpha: float) -> float:
    """Table 1: AVRQ(m) inherits the ``(2 alpha)^alpha`` lower bound."""
    return avrq_lb_energy(alpha)


def avrq_m_ub_energy(alpha: float) -> float:
    """Corollary 6.4: AVRQ(m) is ``2^alpha (2^{alpha-1} alpha^alpha + 1)``."""
    _check_alpha(alpha)
    return 2.0**alpha * avr_m_ub_energy(alpha)


# -- Table 1 as data -------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1 (energy objective)."""

    setting: str  # "offline" / "online"
    name: str
    lower: Callable[[float], float] | None
    upper: Callable[[float], float] | None


TABLE1_ROWS: list[Table1Row] = [
    Table1Row("offline", "Oracle", oracle_lb_energy, None),
    Table1Row("offline", "CRCD", offline_lb_energy, crcd_ub_energy),
    Table1Row("offline", "CRP2D", offline_lb_energy, crp2d_ub_energy),
    Table1Row("offline", "CRAD", offline_lb_energy, crad_ub_energy),
    Table1Row("online", "AVRQ", avrq_lb_energy, avrq_ub_energy),
    Table1Row("online", "BKPQ", bkpq_lb_energy, bkpq_ub_energy),
    Table1Row("online", "AVRQ(m)", avrq_m_lb_energy, avrq_m_ub_energy),
]


def table1_values(alpha: float) -> dict[str, dict[str, float | None]]:
    """Evaluate every Table 1 row at ``alpha``."""
    return {
        row.name: {
            "setting": row.setting,
            "lower": row.lower(alpha) if row.lower else None,
            "upper": row.upper(alpha) if row.upper else None,
        }
        for row in TABLE1_ROWS
    }
