"""Adaptive adversarial search against the online QBSS algorithms.

Random workloads rarely stress an online algorithm; the paper's lower
bounds come from *adaptive* adversaries.  This module automates a greedy
version of that adversary: starting from an empty instance, repeatedly try
appending each candidate job from a menu (releases strictly non-decreasing,
so the process is a legal online arrival sequence), run the *real*
algorithm on each extension, and keep the one that maximises the energy
ratio against the clairvoyant optimum.

This is a search heuristic, not a proof device — its value is empirical:
it reliably finds instances several times worse than random sampling (the
worst instances found are recorded by the ``adaptive-adversary`` bench and
can be serialized for regression hunting).

Determinism: the menu and the tie-breaking are fixed, so a given
(algorithm, menu, steps) triple always reproduces the same instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..core.instance import QBSSInstance
from ..core.power import PowerFunction
from ..core.qjob import QJob
from ..qbss.clairvoyant import clairvoyant
from ..qbss.result import QBSSResult

Algorithm = Callable[[QBSSInstance], QBSSResult]


@dataclass(frozen=True)
class JobTemplate:
    """A candidate job shape the adversary may release.

    ``wstar_choices`` are the exact loads the adversary may pick for it
    (it will try each); window length and loads are fixed per template.
    """

    span: float
    query_cost: float
    work_upper: float
    wstar_choices: tuple[float, ...]

    def instantiate(self, release: float, wstar: float, idx: int) -> QJob:
        return QJob(
            release,
            release + self.span,
            self.query_cost,
            self.work_upper,
            wstar,
            f"adv-{idx}",
        )


def default_menu(scale: float = 1.0) -> list[JobTemplate]:
    """A small expressive menu: cheap/dear queries, short/long windows."""
    return [
        JobTemplate(1.0 * scale, 0.1 * scale, 1.0 * scale, (0.0, 1.0 * scale)),
        JobTemplate(1.0 * scale, 0.5 * scale, 1.0 * scale, (0.0, 1.0 * scale)),
        JobTemplate(2.0 * scale, 0.2 * scale, 2.0 * scale, (0.0, 2.0 * scale)),
        JobTemplate(0.5 * scale, 0.2 * scale, 2.0 * scale, (0.0, 2.0 * scale)),
        JobTemplate(4.0 * scale, 0.4 * scale, 1.0 * scale, (0.0, 1.0 * scale)),
    ]


@dataclass
class AdversarySearchResult:
    """The worst instance found and its measured ratio."""

    instance: QBSSInstance
    ratio: float
    trace: list[str]  # description of each accepted step


def _ratio(algorithm: Algorithm, qi: QBSSInstance, alpha: float) -> float:
    power = PowerFunction(alpha)
    base = clairvoyant(qi, alpha=alpha)
    if base.energy_value <= 0:
        return 0.0
    result = algorithm(qi)
    return result.energy(power) / base.energy_value


def adaptive_online_search(
    algorithm: Algorithm,
    alpha: float = 3.0,
    steps: int = 6,
    menu: Sequence[JobTemplate] | None = None,
    release_offsets: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
) -> AdversarySearchResult:
    """Greedy adaptive construction of a bad instance (see module docstring).

    At each step the adversary considers every (template, release offset,
    w* choice) extension of the current instance — releases move forward by
    the offset from the previous release — and keeps the extension with the
    highest ratio; it stops early when no extension improves.
    """
    templates = list(menu) if menu is not None else default_menu()
    jobs: list[QJob] = []
    trace: list[str] = []
    best_ratio = 0.0
    last_release = 0.0

    for step in range(steps):
        best_ext: tuple[QJob, float, str] | None = None
        for t_idx, template in enumerate(templates):
            for off in release_offsets:
                release = last_release + off
                for wstar in template.wstar_choices:
                    candidate = template.instantiate(release, wstar, len(jobs))
                    qi = QBSSInstance(jobs + [candidate])
                    ratio = _ratio(algorithm, qi, alpha)
                    if best_ext is None or ratio > best_ext[1]:
                        best_ext = (
                            candidate,
                            ratio,
                            f"step {step}: template {t_idx} at t={release:g} "
                            f"w*={wstar:g} -> ratio {ratio:.3f}",
                        )
        assert best_ext is not None
        candidate, ratio, desc = best_ext
        if ratio <= best_ratio + 1e-9 and jobs:
            break  # no extension makes things worse for the algorithm
        jobs.append(candidate)
        last_release = candidate.release
        best_ratio = ratio
        trace.append(desc)

    return AdversarySearchResult(QBSSInstance(jobs), best_ratio, trace)
