"""Classical speed-scaling lower-bound families.

Lemma 5.1's ``(2 alpha)^alpha`` bound for AVRQ "extends the lower bound for
AVR proposed in [13]" — i.e. it rides on how bad plain AVR can get.  This
module provides the classical adversarial families those arguments build
on, as parametric instance generators plus a small search helper:

* :func:`avr_tower_instance` — one-sided nested windows with the
  ``W(x) = x^{1-1/alpha}`` work profile; drives AVR towards ``alpha^alpha``
  (the marginal-divergence choice: AVR speed ~ (alpha-1) t^{-1/alpha}
  versus the optimal staircase ~ t^{-1/alpha} / ... per shell);
* :func:`avr_two_sided_instance` — the symmetric version (windows centred
  on a common point), which is how Bansal, Bunde, Chan and Pruhs push AVR
  towards ``((2-delta) alpha)^alpha / 2``;
* :func:`oa_staircase_instance` — arrival staircase with a common deadline
  that makes OA perpetually under-commit, approaching ``alpha^alpha``;
* :func:`maximize_family_ratio` — grid search over a family parameter.

These families are *finite* truncations of asymptotic constructions: the
benches report trajectories, not attained constants.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..core.job import Job
from ..core.power import PowerFunction
from ..speed_scaling.yds import yds_profile


def _shell_works(levels: int, alpha: float, shrink: float) -> list[tuple[float, float]]:
    """(deadline, work) pairs for the W(x) = x^{1-1/alpha} shell profile."""
    beta = 1.0 - 1.0 / alpha
    out = []
    for i in range(levels):
        d = shrink**i
        inner = shrink ** (i + 1) if i < levels - 1 else 0.0
        w = d**beta - inner**beta
        out.append((d, max(w, 1e-12)))
    return out


def avr_tower_instance(levels: int, alpha: float, shrink: float = 0.5) -> list[Job]:
    """Nested windows ``(0, shrink^i]`` with shell works (one-sided family)."""
    if levels < 1:
        raise ValueError("need at least one level")
    if not 0.0 < shrink < 1.0:
        raise ValueError("shrink must be in (0, 1)")
    return [
        Job(0.0, d, w, f"tower-{i}")
        for i, (d, w) in enumerate(_shell_works(levels, alpha, shrink))
    ]


def avr_two_sided_instance(
    levels: int, alpha: float, shrink: float = 0.5, center: float = 1.0
) -> list[Job]:
    """Symmetric windows ``(center - L_i, center + L_i]`` (two-sided family).

    Each level contributes its shell work on *both* sides of the centre, so
    AVR's density pile-up at the centre doubles relative to the one-sided
    tower while the optimum still spreads each shell across its full
    window — the mechanism behind the stronger two-sided bound.
    """
    if levels < 1:
        raise ValueError("need at least one level")
    jobs = []
    for i, (d, w) in enumerate(_shell_works(levels, alpha, shrink)):
        jobs.append(Job(center - d, center + d, 2.0 * w, f"sym-{i}"))
    return jobs


def oa_staircase_instance(
    steps: int, alpha: float, horizon: float = 1.0
) -> list[Job]:
    """Arrival staircase with a common deadline, the OA adversary's shape.

    Work arrives at times ``t_i = horizon * (1 - q^i)`` in amounts that keep
    OA's replanned speed rising: each new batch is exactly what makes the
    remaining-work density grow geometrically.  As ``steps`` grows OA's
    energy approaches ``alpha^alpha`` times the optimum (classical result of
    Bansal, Kimbrel, Pruhs).
    """
    if steps < 1:
        raise ValueError("need at least one step")
    q = (alpha - 1.0) / alpha
    jobs = []
    for i in range(steps):
        t = horizon * (1.0 - q**i)
        remaining = horizon - t
        # arrival sized so the replanned density rises by the factor 1/q
        work = remaining * (q ** -(i * (1.0 / alpha)) - (1.0 if i == 0 else 0.0))
        work = abs(work)
        jobs.append(Job(t, horizon, max(work, 1e-12), f"stair-{i}"))
    return jobs


def family_ratio(
    jobs: Sequence[Job],
    profile_fn: Callable[[Sequence[Job]], object],
    alpha: float,
) -> float:
    """Energy ratio of an online profile against the offline optimum."""
    power = PowerFunction(alpha)
    opt = yds_profile(jobs).energy(power)
    if opt <= 0:
        raise ValueError("optimum has zero energy; degenerate family instance")
    return profile_fn(jobs).energy(power) / opt  # type: ignore[union-attr]


def maximize_family_ratio(
    family: Callable[[float], Sequence[Job]],
    params: Sequence[float],
    profile_fn: Callable[[Sequence[Job]], object],
    alpha: float,
) -> tuple[float, float]:
    """Grid search: ``(best parameter, best ratio)`` over ``params``."""
    best_p, best_r = params[0], -1.0
    for p in params:
        r = family_ratio(family(p), profile_fn, alpha)
        if r > best_r:
            best_p, best_r = p, r
    return best_p, best_r
