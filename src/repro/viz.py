"""Plain-text visualisation of profiles and schedules.

Terminal-friendly (no plotting dependencies): speed-profile "skylines" and
per-machine Gantt charts built from unicode block characters.  Used by the
examples and handy in a REPL when debugging an algorithm's behaviour.
"""

from __future__ import annotations

from collections.abc import Sequence

from .core.profile import SpeedProfile
from .core.schedule import Schedule

_BLOCKS = " ▁▂▃▄▅▆▇█"


def profile_skyline(
    profile: SpeedProfile,
    width: int = 72,
    start: float | None = None,
    end: float | None = None,
    max_speed: float | None = None,
) -> str:
    """Render a speed profile as one line of block characters.

    Each column shows the speed at the column's midpoint, quantised to
    eight levels against ``max_speed`` (default: the profile's own peak).
    """
    if profile.is_empty:
        return " " * width
    lo = profile.start if start is None else start
    hi = profile.end if end is None else end
    if hi <= lo:
        raise ValueError("end must exceed start")
    peak = max_speed if max_speed is not None else profile.max_speed()
    if peak <= 0:
        return " " * width
    cols = []
    step = (hi - lo) / width
    for i in range(width):
        s = profile.speed_at(lo + (i + 0.5) * step)
        level = min(int(round(s / peak * (len(_BLOCKS) - 1))), len(_BLOCKS) - 1)
        cols.append(_BLOCKS[level])
    return "".join(cols)


def profile_chart(
    profiles: Sequence[SpeedProfile],
    labels: Sequence[str] | None = None,
    width: int = 72,
) -> str:
    """Stack several skylines on a shared time axis and speed scale.

    ``labels``, when given, must match ``profiles`` in length — a shorter
    list used to silently drop the unlabelled profiles from the chart.
    """
    if labels is not None and len(labels) != len(profiles):
        raise ValueError(
            f"profile_chart got {len(profiles)} profiles but "
            f"{len(labels)} labels; lengths must match"
        )
    live = [p for p in profiles if not p.is_empty]
    if not live:
        return "(all profiles empty)"
    lo = min(p.start for p in live)
    hi = max(p.end for p in live)
    peak = max(p.max_speed() for p in live)
    labels = list(labels or [f"profile {i}" for i in range(len(profiles))])
    label_w = max(len(s) for s in labels)
    lines = []
    for label, profile in zip(labels, profiles):
        sky = profile_skyline(profile, width, lo, hi, peak)
        lines.append(f"{label.rjust(label_w)} |{sky}|")
    axis = f"{'':>{label_w}} +{'-' * width}+"
    scale = (
        f"{'':>{label_w}}  t = [{lo:g}, {hi:g}]   "
        f"full block = speed {peak:.3g}"
    )
    return "\n".join(lines + [axis, scale])


def gantt(
    schedule: Schedule,
    width: int = 72,
    job_symbols: dict[str, str] | None = None,
) -> str:
    """Per-machine Gantt chart: one row per machine, one symbol per job.

    Columns are time buckets; the symbol shown is the job occupying the
    bucket's midpoint ('.' for idle, lowercase letters assigned to jobs in
    first-seen order unless ``job_symbols`` overrides).  Jobs beyond the
    62-symbol alphabet all render as ``?``; the legend calls those
    collisions out explicitly instead of listing each ``?`` as if it were
    a unique symbol.
    """
    lo, hi = schedule.span()
    if hi <= lo:
        return "(empty schedule)"
    symbols = dict(job_symbols or {})
    alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    next_sym = 0

    def symbol_for(job_id: str) -> str:
        nonlocal next_sym
        if job_id not in symbols:
            symbols[job_id] = (
                alphabet[next_sym] if next_sym < len(alphabet) else "?"
            )
            next_sym += 1
        return symbols[job_id]

    step = (hi - lo) / width
    lines = []
    for m in range(schedule.machines):
        row = []
        slices = schedule.slices(m)
        for i in range(width):
            t = lo + (i + 0.5) * step
            sym = "."
            for s in slices:
                if s.start <= t < s.end:
                    sym = symbol_for(s.job_id)
                    break
            row.append(sym)
        lines.append(f"m{m} |{''.join(row)}|")
    lines.append(f"   +{'-' * width}+  t = [{lo:g}, {hi:g}]")
    named = sorted(
        ((job, sym) for job, sym in symbols.items() if sym != "?"),
        key=lambda kv: kv[1],
    )
    collided = sorted(job for job, sym in symbols.items() if sym == "?")
    parts = [f"{sym}={job}" for job, sym in named]
    if collided:
        parts.append(
            f"?={{{','.join(collided)}}} ({len(collided)} jobs share '?'; "
            "symbol alphabet exhausted)"
        )
    if parts:
        lines.append("   " + "  ".join(parts))
    return "\n".join(lines)
