"""Synthetic trace *files* — ground truth for the trace pipeline.

Where :mod:`repro.workloads.generators` builds in-memory instances, this
module writes trace files in the external formats :mod:`repro.traces`
ingests (SWF, CSV, JSONL), so benchmarks and tests can exercise the full
parse → synthesize → shard → evaluate pipeline on traces of any size
without shipping megabytes of archive data.

Arrivals are a Poisson process (exponential inter-arrival times, so the
stream is release-sorted by construction); runtimes are lognormal; the
SWF "requested time" over-estimates the runtime by a uniform factor, as
real users do.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

PathLike = str | Path


def _draw_jobs(n: int, seed: int, arrival_rate: float, runtime_sigma: float):
    rng = np.random.default_rng(seed)
    releases = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n))
    runtimes = rng.lognormal(mean=0.0, sigma=runtime_sigma, size=n)
    requested = runtimes * rng.uniform(1.1, 4.0, size=n)
    return releases, runtimes, requested


def write_synthetic_swf(
    path: PathLike,
    n: int,
    seed: int = 0,
    *,
    arrival_rate: float = 0.02,
    runtime_sigma: float = 1.0,
) -> Path:
    """Write an ``n``-job Standard Workload Format file.

    ``arrival_rate`` is jobs per trace-time unit (the default 0.02 spreads
    10k jobs over ~500k "seconds" — a plausible week of cluster log).
    All 18 SWF fields are emitted; the ones the parser ignores carry the
    conventional ``-1`` placeholders.
    """
    releases, runtimes, requested = _draw_jobs(
        n, seed, arrival_rate, runtime_sigma
    )
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("; Synthetic SWF trace (repro.workloads.tracegen)\n")
        handle.write(f"; MaxJobs: {n}\n")
        handle.write(f"; Note: seed={seed} arrival_rate={arrival_rate}\n")
        for i in range(n):
            fields = [
                str(i + 1),                    # 1 job number
                f"{releases[i]:.3f}",          # 2 submit time
                "-1",                          # 3 wait time
                f"{runtimes[i]:.3f}",          # 4 run time
                "1",                           # 5 allocated processors
                "-1",                          # 6 average CPU time
                "-1",                          # 7 used memory
                "1",                           # 8 requested processors
                f"{requested[i]:.3f}",         # 9 requested time
                "-1",                          # 10 requested memory
                "1",                           # 11 status
                "-1",                          # 12 user id
                "-1",                          # 13 group id
                "-1",                          # 14 executable number
                "1",                           # 15 queue number
                "-1",                          # 16 partition number
                "-1",                          # 17 preceding job
                "-1",                          # 18 think time
            ]
            handle.write(" ".join(fields) + "\n")
    return path


def write_synthetic_tabular(
    path: PathLike,
    n: int,
    seed: int = 0,
    *,
    fmt: str = "csv",
    arrival_rate: float = 0.02,
    runtime_sigma: float = 1.0,
    deadline_slack: float = 3.0,
    with_query_cost: bool = False,
) -> Path:
    """Write an ``n``-job trace in the generic CSV or JSONL schema.

    Deadlines are ``release + deadline_slack x runtime``; with
    ``with_query_cost`` a ``query_cost`` column of a fraction of the
    runtime is included.
    """
    if fmt not in ("csv", "jsonl"):
        raise ValueError(f"fmt must be 'csv' or 'jsonl', got {fmt!r}")
    releases, runtimes, _requested = _draw_jobs(
        n, seed, arrival_rate, runtime_sigma
    )
    rng = np.random.default_rng((seed, 1))
    costs = runtimes * rng.uniform(0.05, 0.5, size=n)
    path = Path(path)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        if fmt == "csv":
            header = "release,deadline,runtime"
            if with_query_cost:
                header += ",query_cost"
            handle.write(header + "\n")
        for i in range(n):
            deadline = releases[i] + deadline_slack * runtimes[i]
            if fmt == "csv":
                cells = [
                    f"{releases[i]:.3f}",
                    f"{deadline:.3f}",
                    f"{runtimes[i]:.3f}",
                ]
                if with_query_cost:
                    cells.append(f"{costs[i]:.3f}")
                handle.write(",".join(cells) + "\n")
            else:
                row = {
                    "release": round(float(releases[i]), 3),
                    "deadline": round(float(deadline), 3),
                    "runtime": round(float(runtimes[i]), 3),
                }
                if with_query_cost:
                    row["query_cost"] = round(float(costs[i]), 3)
                handle.write(json.dumps(row) + "\n")
    return path
