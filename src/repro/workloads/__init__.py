"""Synthetic workloads: random generators and the paper's motivating scenarios."""

from .generators import (
    DEFAULT_UNCERTAINTY,
    UncertaintyModel,
    bursty_online_instance,
    common_deadline_instance,
    common_release_instance,
    diurnal_trace_instance,
    multi_machine_instance,
    online_instance,
    power_of_two_instance,
)
from .tracegen import write_synthetic_swf, write_synthetic_tabular
from .scenarios import (
    DEFAULT_FILE_CLASSES,
    FileClass,
    code_optimizer_scenario,
    datacenter_batch_scenario,
    file_compression_scenario,
)

__all__ = [
    "DEFAULT_UNCERTAINTY",
    "UncertaintyModel",
    "bursty_online_instance",
    "common_deadline_instance",
    "common_release_instance",
    "diurnal_trace_instance",
    "multi_machine_instance",
    "online_instance",
    "power_of_two_instance",
    "DEFAULT_FILE_CLASSES",
    "FileClass",
    "code_optimizer_scenario",
    "datacenter_batch_scenario",
    "file_compression_scenario",
    "write_synthetic_swf",
    "write_synthetic_tabular",
]
