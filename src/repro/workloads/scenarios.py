"""The paper's motivating applications as synthetic scenarios.

The introduction motivates the query with two concrete stories:

* **code optimisation** — the query is an optimiser pass: it costs some
  extra load and usually shrinks the job substantially, but occasionally
  barely helps;
* **file compression** — the query is a compressor: cost roughly
  proportional to input size, output size drawn from a file-type-dependent
  compressibility distribution.

These generators produce correlated ``(c_j, w_j, w*_j)`` triples matching
those stories — unlike the uniform generators, the query cost and payoff
are linked, which is where the golden-ratio rule earns its keep (see the
query-policy ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import QBSSInstance
from ..core.qjob import QJob

RngLike = np.random.Generator | int | None


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def code_optimizer_scenario(
    n: int,
    seed: RngLike = None,
    horizon: float = 20.0,
    machines: int = 1,
) -> QBSSInstance:
    """Batch compile farm: queries are optimiser passes.

    * ``w_j`` — unoptimised build workload, lognormal;
    * ``c_j`` — the optimiser costs 5–25% of the unoptimised workload;
    * ``w*_j`` — bimodal payoff: with probability 0.7 the optimiser shines
      (exact load 10–40% of ``w_j``), otherwise it barely helps (75–100%).

    Deadlines model CI time budgets: window 2x–6x the job's natural length.
    """
    rng = _rng(seed)
    jobs: list[QJob] = []
    for i in range(n):
        w = float(rng.lognormal(mean=0.5, sigma=0.6))
        c = float(w * rng.uniform(0.05, 0.25))
        if rng.random() < 0.7:
            wstar = float(w * rng.uniform(0.10, 0.40))
        else:
            wstar = float(w * rng.uniform(0.75, 1.00))
        r = float(rng.uniform(0.0, horizon))
        span = float(rng.uniform(2.0, 6.0))
        jobs.append(QJob(r, r + span, c, w, min(wstar, w), f"build-{i}"))
    return QBSSInstance(jobs, machines)


@dataclass(frozen=True)
class FileClass:
    """A file type with its compressibility profile."""

    name: str
    weight: float  # relative frequency
    ratio_low: float  # compressed/original lower bound
    ratio_high: float  # compressed/original upper bound


DEFAULT_FILE_CLASSES = (
    FileClass("text", 0.4, 0.15, 0.45),
    FileClass("binary", 0.3, 0.55, 0.85),
    FileClass("media", 0.3, 0.92, 1.00),  # already compressed
)


def file_compression_scenario(
    n: int,
    seed: RngLike = None,
    horizon: float = 20.0,
    machines: int = 1,
    classes=DEFAULT_FILE_CLASSES,
) -> QBSSInstance:
    """Archive/ingest pipeline: queries are compression passes.

    The compressor costs ~10–20% of the raw transfer workload; the payoff
    depends on the (hidden) file class — media files barely compress, text
    compresses a lot.  The scheduler sees only the raw size upper bound.
    """
    rng = _rng(seed)
    weights = np.array([fc.weight for fc in classes], dtype=float)
    weights = weights / weights.sum()
    jobs: list[QJob] = []
    for i in range(n):
        fc = classes[int(rng.choice(len(classes), p=weights))]
        w = float(rng.lognormal(mean=0.0, sigma=0.9))
        c = float(w * rng.uniform(0.10, 0.20))
        wstar = float(w * rng.uniform(fc.ratio_low, fc.ratio_high))
        r = float(rng.uniform(0.0, horizon))
        span = float(rng.uniform(1.0, 5.0))
        jobs.append(QJob(r, r + span, c, w, min(wstar, w), f"file-{i}"))
    return QBSSInstance(jobs, machines)


def datacenter_batch_scenario(
    n: int,
    machines: int = 4,
    seed: RngLike = None,
) -> QBSSInstance:
    """Nightly batch window on a small cluster (Sec. 6 setting).

    All jobs share a release (start of the batch window) and have deadlines
    staggered across the night; work is heavy-tailed so AVR(m)'s big/small
    machinery is exercised.
    """
    rng = _rng(seed)
    jobs: list[QJob] = []
    for i in range(n):
        w = float(machines * rng.pareto(2.5) + 0.2)
        c = float(w * rng.uniform(0.05, 0.6))
        wstar = float(w * rng.beta(1.2, 2.2))
        d = float(rng.uniform(4.0, 12.0))
        jobs.append(QJob(0.0, d, c, w, min(wstar, w), f"dc-{i}"))
    return QBSSInstance(jobs, machines)
