"""Random QBSS instance generators.

Each generator matches one of the paper's structural settings:

* :func:`common_deadline_instance` — Sec. 4.2 (CRCD);
* :func:`power_of_two_instance` — Sec. 4.3 (CRP2D);
* :func:`common_release_instance` — Sec. 4.4 (CRAD, arbitrary deadlines);
* :func:`online_instance` — Sec. 5 (arbitrary releases and deadlines);
* plus :func:`multi_machine_instance` which sizes an online instance so
  ``m`` machines are meaningfully loaded (Sec. 6).

All generators are deterministic given the ``rng`` / ``seed`` argument.
The triple ``(c_j, w_j, w*_j)`` is drawn so that both sides of the golden
threshold occur: ``c_j`` uniform in ``(0, w_j]`` and ``w*_j`` a random
compression of ``w_j`` (see :class:`UncertaintyModel`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.instance import QBSSInstance
from ..core.qjob import QJob

RngLike = np.random.Generator | int | None


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class UncertaintyModel:
    """How ``(c_j, w*_j)`` relate to the upper bound ``w_j``.

    Attributes
    ----------
    query_frac_low / query_frac_high:
        ``c_j`` is ``w_j`` times a uniform draw from this range (clipped to
        the model constraint ``c_j in (0, w_j]``).
    compression_beta_a / compression_beta_b:
        ``w*_j = w_j * Beta(a, b)`` — the Beta's mass controls how often
        queries pay off.  The default (a=1, b=2) skews towards strong
        compression, i.e. queries frequently worthwhile.
    """

    query_frac_low: float = 0.05
    query_frac_high: float = 1.0
    compression_beta_a: float = 1.0
    compression_beta_b: float = 2.0

    def draw(self, rng: np.random.Generator, work_upper: float) -> tuple:
        frac = rng.uniform(self.query_frac_low, self.query_frac_high)
        c = float(np.clip(frac * work_upper, 1e-9, work_upper))
        wstar = float(
            work_upper
            * rng.beta(self.compression_beta_a, self.compression_beta_b)
        )
        return c, min(wstar, work_upper)


DEFAULT_UNCERTAINTY = UncertaintyModel()


def common_deadline_instance(
    n: int,
    deadline: float = 1.0,
    seed: RngLike = None,
    uncertainty: UncertaintyModel = DEFAULT_UNCERTAINTY,
    work_scale: float = 1.0,
) -> QBSSInstance:
    """All jobs released at 0 with the same ``deadline`` (CRCD's setting)."""
    rng = _rng(seed)
    jobs = []
    for i in range(n):
        w = float(work_scale * rng.lognormal(mean=0.0, sigma=0.75))
        c, wstar = uncertainty.draw(rng, w)
        jobs.append(QJob(0.0, deadline, c, w, wstar, f"cd-{i}"))
    return QBSSInstance(jobs)


def power_of_two_instance(
    n: int,
    max_exponent: int = 4,
    seed: RngLike = None,
    uncertainty: UncertaintyModel = DEFAULT_UNCERTAINTY,
    work_scale: float = 1.0,
) -> QBSSInstance:
    """Common release 0, deadlines in ``{2^0, ..., 2^max_exponent}``."""
    rng = _rng(seed)
    jobs = []
    for i in range(n):
        d = float(2.0 ** rng.integers(0, max_exponent + 1))
        w = float(work_scale * rng.lognormal(mean=0.0, sigma=0.75))
        c, wstar = uncertainty.draw(rng, w)
        jobs.append(QJob(0.0, d, c, w, wstar, f"p2-{i}"))
    return QBSSInstance(jobs)


def common_release_instance(
    n: int,
    max_deadline: float = 16.0,
    seed: RngLike = None,
    uncertainty: UncertaintyModel = DEFAULT_UNCERTAINTY,
    work_scale: float = 1.0,
) -> QBSSInstance:
    """Common release 0, arbitrary deadlines in ``(1, max_deadline]``."""
    rng = _rng(seed)
    jobs = []
    for i in range(n):
        d = float(rng.uniform(1.0, max_deadline))
        w = float(work_scale * rng.lognormal(mean=0.0, sigma=0.75))
        c, wstar = uncertainty.draw(rng, w)
        jobs.append(QJob(0.0, d, c, w, wstar, f"cr-{i}"))
    return QBSSInstance(jobs)


def online_instance(
    n: int,
    horizon: float = 10.0,
    min_window: float = 0.5,
    max_window: float = 4.0,
    seed: RngLike = None,
    uncertainty: UncertaintyModel = DEFAULT_UNCERTAINTY,
    work_scale: float = 1.0,
    machines: int = 1,
) -> QBSSInstance:
    """Jobs arriving over ``[0, horizon)`` with random windows (Sec. 5)."""
    rng = _rng(seed)
    jobs = []
    for i in range(n):
        r = float(rng.uniform(0.0, horizon))
        span = float(rng.uniform(min_window, max_window))
        w = float(work_scale * rng.lognormal(mean=0.0, sigma=0.75))
        c, wstar = uncertainty.draw(rng, w)
        jobs.append(QJob(r, r + span, c, w, wstar, f"on-{i}"))
    return QBSSInstance(jobs, machines)


def multi_machine_instance(
    n: int,
    machines: int,
    seed: RngLike = None,
    uncertainty: UncertaintyModel = DEFAULT_UNCERTAINTY,
) -> QBSSInstance:
    """Online instance scaled so ``machines`` machines stay busy.

    Work scales with ``machines`` so the big/small split of AVR(m) is
    exercised (a few dense jobs become "big").
    """
    rng = _rng(seed)
    base = online_instance(
        n,
        horizon=8.0,
        seed=rng,
        uncertainty=uncertainty,
        work_scale=float(machines),
        machines=machines,
    )
    return base


def diurnal_trace_instance(
    n: int,
    days: float = 1.0,
    day_length: float = 24.0,
    peak_hour: float = 14.0,
    seed: RngLike = None,
    uncertainty: UncertaintyModel = DEFAULT_UNCERTAINTY,
    machines: int = 1,
) -> QBSSInstance:
    """A synthetic daily trace: sinusoidal arrival intensity.

    Arrival times are drawn by rejection from the rate
    ``1 + sin`` curve peaking at ``peak_hour``; windows are a few hours.
    This is the stand-in for a production arrival trace — it exercises the
    online algorithms' behaviour under load that swells and ebbs rather
    than the uniform arrivals of :func:`online_instance`.
    """
    rng = _rng(seed)
    horizon = days * day_length
    jobs = []
    two_pi = 2.0 * math.pi
    while len(jobs) < n:
        t = float(rng.uniform(0.0, horizon))
        intensity = 0.5 * (
            1.0 + math.sin(two_pi * (t - peak_hour + day_length / 4) / day_length)
        )
        if rng.random() > intensity:
            continue
        span = float(rng.uniform(1.0, 6.0))
        w = float(rng.lognormal(mean=0.0, sigma=0.75))
        c, wstar = uncertainty.draw(rng, w)
        jobs.append(QJob(t, t + span, c, w, wstar, f"tr-{len(jobs)}"))
    return QBSSInstance(jobs, machines)


def bursty_online_instance(
    bursts: int,
    jobs_per_burst: int,
    seed: RngLike = None,
    burst_gap: float = 4.0,
    uncertainty: UncertaintyModel = DEFAULT_UNCERTAINTY,
) -> QBSSInstance:
    """Arrival bursts — stresses online algorithms' reaction to spikes."""
    rng = _rng(seed)
    jobs = []
    for b in range(bursts):
        t0 = b * burst_gap
        for i in range(jobs_per_burst):
            r = t0 + float(rng.uniform(0.0, 0.2))
            span = float(rng.uniform(0.5, burst_gap))
            w = float(rng.lognormal(mean=0.0, sigma=0.5))
            c, wstar = uncertainty.draw(rng, w)
            jobs.append(QJob(r, r + span, c, w, wstar, f"b{b}-{i}"))
    return QBSSInstance(jobs)
