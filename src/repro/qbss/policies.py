"""Query and split policies.

The paper's algorithms differ only in two pluggable choices:

* a **query policy** — whether to query a job given its *known* attributes
  ``(r, d, c, w)``.  The central one is the golden-ratio rule of Lemma 3.1:
  query exactly when ``c_j <= w_j / phi``, which guarantees
  ``p_j <= phi * p*_j`` per job.  AVRQ always queries; the never-query
  baseline is unboundedly bad (Lemma 4.1).
* a **split policy** — the fraction ``x`` of the window given to the query.
  The paper's algorithms all use the *equal window* ``x = 1/2`` (motivated
  by Lemma 4.3: any other fixed split worsens the single-job lower bound);
  the ablation benches sweep ``x``.

Policies see only :class:`~repro.core.qjob.QJobView`s — they cannot read the
exact load.  The *oracle* variants, which do peek at ``w*``, take the raw
:class:`~repro.core.qjob.QJob` and exist purely as analysis baselines
(the "oracle model" of Sec. 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..core.constants import PHI
from ..core.qjob import QJob, QJobView


class QueryPolicy(Protocol):
    """Decides whether to query a job from its known attributes."""

    def should_query(self, job: QJobView) -> bool: ...


class SplitPolicy(Protocol):
    """Chooses the split fraction ``x`` in ``(0, 1)`` for a queried job."""

    def split_fraction(self, job: QJobView) -> float: ...


# -- query policies --------------------------------------------------------------


@dataclass(frozen=True)
class AlwaysQuery:
    """Query every job (the AVRQ choice)."""

    def should_query(self, job: QJobView) -> bool:
        return True


@dataclass(frozen=True)
class NeverQuery:
    """Never query — the unboundedly bad baseline of Lemma 4.1."""

    def should_query(self, job: QJobView) -> bool:
        return False


@dataclass(frozen=True)
class ThresholdQuery:
    """Query when ``c_j <= w_j / threshold``.

    ``threshold = PHI`` reproduces the golden-ratio rule; other values are
    used by the query-policy ablation bench.
    """

    threshold: float = PHI

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {self.threshold}")

    def should_query(self, job: QJobView) -> bool:
        return job.query_cost <= job.work_upper / self.threshold


def golden_ratio_policy() -> ThresholdQuery:
    """The Lemma 3.1 rule: query iff ``c_j <= w_j / phi``."""
    return ThresholdQuery(PHI)


@dataclass
class RandomizedQuery:
    """Query with probability ``rho`` (used in the Lemma 4.4 analysis)."""

    rho: float
    rng: np.random.Generator

    def __init__(self, rho: float, rng: np.random.Generator | int | None = None):
        if not 0.0 <= rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {rho}")
        self.rho = rho
        self.rng = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )

    def should_query(self, job: QJobView) -> bool:
        return bool(self.rng.random() < self.rho)


@dataclass(frozen=True)
class OracleQuery:
    """Analysis-only: queries exactly when the clairvoyant would.

    Takes raw :class:`QJob`s — reading ``w*`` is the whole point — and must
    never be wired into an online algorithm under test.
    """

    def should_query_true(self, job: QJob) -> bool:
        return job.query_cost + job.work_true < job.work_upper

    def should_query(self, job: QJobView) -> bool:  # pragma: no cover
        raise TypeError("OracleQuery needs the raw QJob; use should_query_true")


# -- split policies --------------------------------------------------------------


@dataclass(frozen=True)
class EqualWindowSplit:
    """The paper's split: query in the first half, revealed load in the second."""

    def split_fraction(self, job: QJobView) -> float:
        return 0.5


@dataclass(frozen=True)
class FixedSplit:
    """Constant split fraction ``x`` (ablation bench)."""

    x: float

    def __post_init__(self) -> None:
        if not 0.0 < self.x < 1.0:
            raise ValueError(f"split fraction must be in (0, 1), got {self.x}")

    def split_fraction(self, job: QJobView) -> float:
        return self.x


@dataclass(frozen=True)
class ProportionalSplit:
    """Uninformed heuristic split: ``x = c / (c + beta * w)``.

    Motivated by the oracle split ``x = c/(c + w*)``: not knowing ``w*``,
    assume it will be ``beta * w`` (default: half the upper bound).  Gives
    small queries small phase-1 windows instead of always half.  Compared
    against the equal window in the split-point ablation — a smarter
    uninformed split can win on distributions while the equal window
    remains the worst-case-safe choice (Lemma 4.3).
    """

    beta: float = 0.5

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ValueError(f"beta must be > 0, got {self.beta}")

    def split_fraction(self, job: QJobView) -> float:
        x = job.query_cost / (job.query_cost + self.beta * job.work_upper)
        return min(max(x, 1e-6), 1.0 - 1e-6)


@dataclass(frozen=True)
class OracleSplit:
    """Analysis-only: the split an oracle would pick (Sec. 4.1 oracle model).

    Knowing ``w*``, the energy- and max-speed-optimal split runs the whole
    window at one constant speed: ``x = c / (c + w*)`` (any ``x`` works when
    ``w* = 0`` and the query is still mandatory to *know* that; we then put
    the query across the whole window minus nothing, i.e. ``x -> 1``, capped
    for numeric sanity).
    """

    cap: float = 1.0 - 1e-9

    def split_fraction_true(self, job: QJob) -> float:
        denom = job.query_cost + job.work_true
        x = job.query_cost / denom if denom > 0 else self.cap
        return min(max(x, 1e-9), self.cap)

    def split_fraction(self, job: QJobView) -> float:  # pragma: no cover
        raise TypeError(
            "OracleSplit needs the raw QJob; use split_fraction_true"
        )
