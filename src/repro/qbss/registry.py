"""Uniform name → algorithm dispatch for the QBSS runners.

Every QBSS entry point shares the 1.1 signature shape
``algo(qi, *, alpha=..., query_policy=..., split_policy=...)`` (each one
accepting the subset of those keywords that makes sense for it).  This
module is the single place that knows which names exist and which keywords
each accepts, so callers that dispatch by *name* — the experiment engine,
:func:`repro.analysis.ratios.measure`, the causality replay — share one
registry instead of string-matching ad hoc.

    >>> from repro.qbss import run_algorithm
    >>> from repro.workloads.generators import online_instance
    >>> run_algorithm("bkpq", online_instance(4, seed=0)).algorithm
    'BKPQ'
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..core.instance import QBSSInstance
from ..speed_scaling.avr import avr_profile
from ..speed_scaling.bkp import bkp_profile
from .avrq import avrq
from .bkpq import bkpq
from .crad import crad
from .crcd import crcd
from .crp2d import crp2d
from .multi import avrq_m
from .nonmigratory import avrq_nm
from .oaq import oaq
from .oaq_m import oaq_m
from .policies import AlwaysQuery, golden_ratio_policy
from .result import QBSSResult


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered QBSS runner and its dispatch metadata.

    ``accepts`` is the subset of the uniform keywords
    ``{"alpha", "query_policy", "split_policy"}`` the runner understands.
    ``profile_fn`` / ``default_query`` are set for the algorithms whose
    speed formula is causal enough for the event-driven replay of
    :mod:`repro.qbss.simulation` (the batch profile builder over classical
    jobs, and the query policy the algorithm uses by default).
    """

    name: str
    fn: Callable[..., QBSSResult]
    setting: str  # "offline" | "online" | "multi"
    accepts: frozenset[str]
    summary: str
    profile_fn: Callable | None = None
    default_query: Callable | None = None


_KEYWORDS = ("alpha", "query_policy", "split_policy")


def _spec(name, fn, setting, accepts, summary, **extra) -> AlgorithmSpec:
    unknown = set(accepts) - set(_KEYWORDS)
    if unknown:  # pragma: no cover - registry construction guard
        raise ValueError(f"unknown dispatch keywords for {name}: {unknown}")
    return AlgorithmSpec(
        name=name,
        fn=fn,
        setting=setting,
        accepts=frozenset(accepts),
        summary=summary,
        **extra,
    )


#: The uniform name → runner registry.  Keys are the CLI/engine-facing
#: names; values carry the callable plus which uniform keywords it takes.
ALGORITHMS: dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        _spec(
            "crcd", crcd, "offline", {"query_policy"},
            "common release + common deadline (Algorithm 1)",
        ),
        _spec(
            "crp2d", crp2d, "offline", {"query_policy"},
            "common release + power-of-two deadlines (Algorithm 2)",
        ),
        _spec(
            "crad", crad, "offline", {"query_policy"},
            "common release + arbitrary deadlines (rounding + CRP2D)",
        ),
        _spec(
            "avrq", avrq, "online", {"split_policy"},
            "Average Rate with queries (Sec. 5.1)",
            profile_fn=avr_profile,
            default_query=AlwaysQuery,
        ),
        _spec(
            "bkpq", bkpq, "online", {"query_policy", "split_policy"},
            "BKP with golden-ratio queries (Sec. 5.2)",
            profile_fn=bkp_profile,
            default_query=golden_ratio_policy,
        ),
        _spec(
            "oaq", oaq, "online", {"query_policy", "split_policy"},
            "Optimal Available with queries (Sec. 7 extension)",
        ),
        _spec(
            "avrq_m", avrq_m, "multi", {"split_policy"},
            "AVRQ on m parallel machines (Sec. 6)",
        ),
        _spec(
            "avrq_nm", avrq_nm, "multi", set(),
            "non-migratory AVRQ variant (Sec. 7 remark)",
        ),
        _spec(
            "oaq_m", oaq_m, "multi", {"alpha", "query_policy", "split_policy"},
            "OAQ on m parallel machines (extension)",
        ),
    )
}


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm by name (KeyError lists the names)."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown QBSS algorithm {name!r}; "
            f"registered: {', '.join(sorted(ALGORITHMS))}"
        ) from None


def run_algorithm(
    name: str,
    qinstance: QBSSInstance,
    *,
    alpha: float | None = None,
    query_policy=None,
    split_policy=None,
) -> QBSSResult:
    """Run a registered algorithm by name with the uniform keywords.

    Keywords left at ``None`` fall through to the algorithm's defaults;
    passing one the algorithm does not accept raises :class:`TypeError`
    (rather than silently dropping it).
    """
    spec = get_algorithm(name)
    kwargs = {}
    for key, value in zip(_KEYWORDS, (alpha, query_policy, split_policy)):
        if value is None:
            continue
        if key not in spec.accepts:
            raise TypeError(f"algorithm {name!r} does not accept {key}=")
        kwargs[key] = value
    return spec.fn(qinstance, **kwargs)
