"""BKPQ — BKP with Queries (paper Sec. 5.2).

The online adaptation of BKP to the QBSS model: query a job exactly when
``c_j <= w_j / phi`` (the golden-ratio rule), with the equal-window split.
Queried jobs spawn ``(r, (r+d)/2, c)`` at arrival and ``((r+d)/2, d, w*)``
at the midpoint; unqueried jobs spawn ``(r, d, w)``.  BKP runs over the
derived stream.

Guarantees: ``s_BKPQ(t) <= (2 + phi) s_BKP*(t)`` pointwise (Theorem 5.4),
hence ``(2+phi)^alpha * 2 (alpha/(alpha-1))^alpha e^alpha``-competitive for
energy and ``(2+phi) e``-competitive for maximum speed (Corollary 5.5).
"""

from __future__ import annotations

from ..core.compat import absorb_positional
from ..core.edf import run_edf
from ..core.instance import QBSSInstance
from ..speed_scaling.bkp import bkp_profile
from .avrq import check_queries_complete
from .policies import EqualWindowSplit, QueryPolicy, golden_ratio_policy
from .result import QBSSResult
from .transform import derive_online


def bkpq(
    qinstance: QBSSInstance,
    *args,
    query_policy: QueryPolicy | None = None,
    split_policy=None,
) -> QBSSResult:
    """Run BKPQ on a single machine.

    ``query_policy`` defaults to the golden-ratio rule and ``split_policy``
    to the equal window; the ablation benches inject alternatives.
    """
    query_policy, split_policy = absorb_positional(
        "bkpq", args, ("query_policy", "split_policy"), (query_policy, split_policy)
    )
    if qinstance.machines != 1:
        raise ValueError("bkpq is a single-machine algorithm")
    policy = query_policy or golden_ratio_policy()
    derived = derive_online(qinstance, policy, split_policy or EqualWindowSplit())
    jobs = derived.jobs
    profile = bkp_profile(jobs)
    edf = run_edf(jobs, profile)
    if not edf.feasible:  # pragma: no cover - BKP profiles are feasible
        raise RuntimeError(f"BKPQ internal error: EDF infeasible ({edf.unfinished})")
    check_queries_complete(derived, edf.schedule)
    return QBSSResult(
        edf.schedule, [profile], derived.instance(), derived.decisions,
        qinstance, "BKPQ",
    )
