"""Per-job decisions in the QBSS model.

For every uncertain job an algorithm answers two questions (paper Sec. 1):
whether to run the query, and — if so — where to place the *splitting point*
``tau_j = r_j + x (d_j - r_j)`` separating the query (before) from the
revealed load (after).  A :class:`QueryDecision` records one such answer;
algorithms accumulate them so tests and the adversary harness can inspect
exactly what was decided.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QueryDecision:
    """The answer for one job: query or not, and the split fraction ``x``."""

    query: bool
    split: float | None = None

    def __post_init__(self) -> None:
        if self.query:
            if self.split is None or not (0.0 < self.split < 1.0):
                raise ValueError(
                    f"a queried job needs a split fraction in (0, 1), got {self.split}"
                )
        elif self.split is not None:
            raise ValueError("a non-queried job has no split point")


#: Decision used by algorithms that skip the query.
NO_QUERY = QueryDecision(query=False)


def equal_window(query: bool = True) -> QueryDecision:
    """The paper's *equal window* decision: split at ``x = 1/2``."""
    return QueryDecision(query=query, split=0.5) if query else NO_QUERY


@dataclass
class DecisionLog:
    """Mapping from job id to the decision an algorithm took."""

    decisions: dict[str, QueryDecision]

    def __init__(self) -> None:
        self.decisions = {}

    def record(self, job_id: str, decision: QueryDecision) -> None:
        if job_id in self.decisions:
            raise ValueError(f"duplicate decision for job {job_id}")
        self.decisions[job_id] = decision

    def __getitem__(self, job_id: str) -> QueryDecision:
        return self.decisions[job_id]

    def __contains__(self, job_id: str) -> bool:
        return job_id in self.decisions

    def queried_ids(self) -> list:
        return sorted(j for j, d in self.decisions.items() if d.query)

    def unqueried_ids(self) -> list:
        return sorted(j for j, d in self.decisions.items() if not d.query)
