"""AVRQ — Average Rate with Queries (paper Sec. 5.1).

The online adaptation of AVR to the QBSS model: *query every job* with the
equal-window split.  Each arriving job ``(r, d, c, w, w*)`` spawns the
classical query job ``(r, (r+d)/2, c)`` immediately and — once the query
completes at the midpoint — the revealed job ``((r+d)/2, d, w*)``.  AVR runs
over the derived stream.

Guarantees: ``s_AVRQ(t) <= 2 s_AVR*(t)`` pointwise against AVR on the
clairvoyant loads (Theorem 5.2), hence ``2^{2 alpha - 1} alpha^alpha``-
competitive for energy (Corollary 5.3); at least ``(2 alpha)^alpha`` on the
adversarial family of Lemma 5.1.
"""

from __future__ import annotations

from ..core.compat import absorb_positional
from ..core.edf import run_edf
from ..core.instance import QBSSInstance
from ..core.qjob import QueryNotCompleted
from ..speed_scaling.avr import avr_profile
from .policies import AlwaysQuery, EqualWindowSplit
from .result import QBSSResult
from .transform import derive_online


def avrq(qinstance: QBSSInstance, *args, split_policy=None) -> QBSSResult:
    """Run AVRQ on a single machine.

    The derived profile is realised with EDF; before revealing a job's exact
    load the runner checks the query actually finished by the split point in
    the realised schedule (it always does: the query job's derived deadline
    *is* the split point and AVR profiles are EDF-feasible).

    ``split_policy`` defaults to the paper's equal window; the split-point
    ablation bench injects :class:`~repro.qbss.policies.FixedSplit` values.
    """
    (split_policy,) = absorb_positional(
        "avrq", args, ("split_policy",), (split_policy,)
    )
    if qinstance.machines != 1:
        raise ValueError("avrq is single-machine; use avrq_m for m machines")
    derived = derive_online(
        qinstance, AlwaysQuery(), split_policy or EqualWindowSplit()
    )
    jobs = derived.jobs
    profile = avr_profile(jobs)
    edf = run_edf(jobs, profile)
    if not edf.feasible:  # pragma: no cover - AVR profiles are feasible
        raise RuntimeError(f"AVRQ internal error: EDF infeasible ({edf.unfinished})")
    check_queries_complete(derived, edf.schedule)
    return QBSSResult(
        edf.schedule, [profile], derived.instance(), derived.decisions,
        qinstance, "AVRQ",
    )


def check_queries_complete(derived, schedule) -> None:
    """Assert each query job finished by the revelation time it claimed.

    Shared by all online QBSS runners; raises
    :class:`~repro.core.qjob.QueryNotCompleted` on violation, which would
    indicate the runner leaked the exact load before earning it.
    """
    for view in derived.views:
        if view.revealed_at is None:
            continue
        done = schedule.completion_time(view.id + ":query")
        if done > view.revealed_at + 1e-6:
            raise QueryNotCompleted(
                f"query of {view.id} finished at {done}, after the claimed "
                f"revelation time {view.revealed_at}"
            )
