"""OAQ — Optimal Available with Queries (the paper's open question, Sec. 7).

The paper closes by asking whether the OA algorithm of Yao et al. extends
to the QBSS model.  OAQ is the natural candidate: apply the golden-ratio
query rule with the equal-window split (exactly as BKPQ does) and run OA
over the derived stream — replanning with YDS at every derived arrival,
including the midpoint arrivals of revealed loads.

No competitive bound is claimed in the paper; the extension bench
(``benchmarks/test_bench_oaq_extension.py``) measures OAQ empirically
against AVRQ and BKPQ.  The same pointwise argument as Theorem 5.4 suggests
an ``s_OAQ <= (2+phi) s_OA*`` style bound is plausible; we record the
measured ratios in EXPERIMENTS.md.
"""

from __future__ import annotations

from ..core.compat import absorb_positional
from ..core.instance import QBSSInstance
from ..speed_scaling.oa import oa
from .avrq import check_queries_complete
from .policies import EqualWindowSplit, QueryPolicy, golden_ratio_policy
from .result import QBSSResult
from .transform import derive_online


def oaq(
    qinstance: QBSSInstance,
    *args,
    query_policy: QueryPolicy | None = None,
    split_policy=None,
) -> QBSSResult:
    """Run OAQ on a single machine.

    ``query_policy`` defaults to the golden-ratio rule and ``split_policy``
    to the equal window (the same defaults BKPQ uses).
    """
    (query_policy,) = absorb_positional(
        "oaq", args, ("query_policy",), (query_policy,)
    )
    if qinstance.machines != 1:
        raise ValueError("oaq is a single-machine algorithm")
    policy = query_policy or golden_ratio_policy()
    derived = derive_online(qinstance, policy, split_policy or EqualWindowSplit())
    result = oa(derived.jobs)
    if not result.feasible:  # pragma: no cover - OA plans are feasible
        raise RuntimeError(f"OAQ internal error: unfinished {result.unfinished}")
    check_queries_complete(derived, result.schedule)
    return QBSSResult(
        result.schedule, [result.profile], derived.instance(),
        derived.decisions, qinstance, "OAQ",
    )
