"""CRP2D — Common Release, Power-of-2 Deadlines (paper Algorithm 2, Sec. 4.3).

All jobs are released at time 0 and every deadline is a power of two.  The
algorithm:

1. partitions jobs into ``A`` (no query) and ``B`` (query) with the
   golden-ratio rule;
2. forms the classical jobs ``(0, d_j/2, c_j)`` for ``B`` (set ``Q``) and
   ``(0, d_j, w_j)`` for ``A`` (set ``W``), and runs **YDS** on ``Q u W`` to
   fix a base speed ``s_YDS(t)``;
3. at each time ``d/2`` (half of a deadline class) the queries of the jobs
   with deadline ``d`` have completed — YDS scheduled them inside
   ``(0, d/2]`` — revealing the exact loads;
4. during ``(d/2, d]`` it executes the revealed loads ``w*_j`` *on top of*
   the base speed, adding their densities ``w*_j / (d/2)``.

The executed profile is ``s(t) = s_YDS(t) + sum of revealed densities`` and
is realised with EDF (feasible by the capacity superposition argument:
the YDS profile covers ``Q u W`` and each addition exactly covers its
deadline class).  Guarantee (Theorem 4.13): ``(4 phi)^alpha``-approximate
for energy.
"""

from __future__ import annotations

import math
from collections import defaultdict

from ..core.compat import absorb_positional
from ..core.constants import EPS
from ..core.edf import run_edf
from ..core.instance import Instance, QBSSInstance
from ..core.job import Job
from ..core.profile import SpeedProfile, sum_profiles
from ..core.schedule import Schedule
from .decisions import DecisionLog, QueryDecision
from .policies import QueryPolicy, golden_ratio_policy
from .result import QBSSResult


def _require_shape(qinstance: QBSSInstance) -> None:
    if qinstance.machines != 1:
        raise ValueError("CRP2D is a single-machine algorithm")
    if any(abs(j.release) > EPS for j in qinstance):
        raise ValueError("CRP2D requires all releases at time 0")
    if not qinstance.power_of_two_deadlines:
        raise ValueError(
            "CRP2D requires power-of-two deadlines; use CRAD for arbitrary ones"
        )


def crp2d(
    qinstance: QBSSInstance,
    *args,
    query_policy: QueryPolicy | None = None,
) -> QBSSResult:
    """Run CRP2D (see module docstring)."""
    from ..speed_scaling.yds import yds

    (query_policy,) = absorb_positional(
        "crp2d", args, ("query_policy",), (query_policy,)
    )

    if len(qinstance) == 0:
        return QBSSResult(
            Schedule(1), [SpeedProfile()], Instance([]), DecisionLog(), qinstance, "CRP2D"
        )
    _require_shape(qinstance)
    policy = query_policy or golden_ratio_policy()

    log = DecisionLog()
    views = qinstance.views()

    base_jobs: list[Job] = []
    queried = []
    for view in views:
        if policy.should_query(view):
            log.record(view.id, QueryDecision(True, 0.5))
            base_jobs.append(
                Job(0.0, view.deadline / 2, view.query_cost, view.id + ":query")
            )
            queried.append(view)
        else:
            log.record(view.id, QueryDecision(False))
            base_jobs.append(
                Job(0.0, view.deadline, view.work_upper, view.id + ":full")
            )

    base = yds(base_jobs)

    # Reveal per deadline class at time d/2 and build the additive densities.
    revealed_jobs: list[Job] = []
    addition_profiles: list[SpeedProfile] = []
    by_deadline: dict[float, list] = defaultdict(list)
    for view in queried:
        by_deadline[view.deadline].append(view)
    for d, class_views in sorted(by_deadline.items()):
        half = d / 2
        total_revealed = 0.0
        for view in class_views:
            wstar = view.reveal(half)
            revealed_jobs.append(Job(half, d, wstar, view.id + ":work"))
            total_revealed += wstar
        if total_revealed > 0:
            addition_profiles.append(
                SpeedProfile.constant(half, d, total_revealed / half)
            )

    combined = sum_profiles([base.profile] + addition_profiles)
    derived = Instance(base_jobs + revealed_jobs)
    edf = run_edf(list(derived.jobs), combined)
    if not edf.feasible:  # pragma: no cover - guaranteed by superposition
        raise RuntimeError(
            f"CRP2D internal error: EDF infeasible ({edf.unfinished})"
        )
    return QBSSResult(
        edf.schedule, [combined], derived, log, qinstance, "CRP2D"
    )


def max_deadline_exponent(qinstance: QBSSInstance) -> int:
    """``k`` such that ``2**k`` is the largest deadline (paper's notation)."""
    return max(int(round(math.log2(j.deadline))) for j in qinstance)
