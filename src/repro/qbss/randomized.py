"""Randomized query decisions on single-job instances (paper Lemma 4.4).

A randomized algorithm facing one job queries with probability ``rho`` (and,
in the oracle model, splits the window optimally when it does).  On the
normalized single-job instance — window ``(0, 1]``, query cost ``c``, upper
bound ``w``, adversarial exact load ``w*`` — all quantities are closed-form:

* query branch: constant speed ``c + w*`` (oracle split), energy
  ``(c + w*)**alpha``;
* no-query branch: constant speed ``w``, energy ``w**alpha``;
* optimum: constant speed ``p* = min(w, c + w*)``.

Lemma 4.4 states no randomized algorithm beats ``4/3`` for maximum speed or
``(1 + phi**alpha) / 2`` for energy, even in the oracle model.  The
functions here compute the exact game values so the lower-bound bench can
regenerate those numbers (the optimum of the ``max over instances, min over
rho, max over w*`` game).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
from scipy import optimize

from ..core.constants import PHI

Objective = Literal["energy", "max_speed"]


def branch_values(
    c: float, w: float, wstar: float, alpha: float, objective: Objective
) -> tuple[float, float, float]:
    """``(query_value, no_query_value, optimal_value)`` on the unit window."""
    if not 0 < c <= w:
        raise ValueError("need 0 < c <= w")
    if not 0 <= wstar <= w:
        raise ValueError("need 0 <= w* <= w")
    p_star = min(w, c + wstar)
    if objective == "energy":
        return ((c + wstar) ** alpha, w**alpha, p_star**alpha)
    return (c + wstar, w, p_star)


def expected_ratio(
    rho: float, c: float, w: float, wstar: float, alpha: float, objective: Objective
) -> float:
    """Expected objective of the randomized algorithm over the optimum."""
    q, nq, opt = branch_values(c, w, wstar, alpha, objective)
    return (rho * q + (1 - rho) * nq) / opt


def worst_case_ratio(
    rho: float, c: float, w: float, alpha: float, objective: Objective
) -> float:
    """Adversary's best response: max over ``w*`` of the expected ratio.

    The expected value is piecewise monotone in ``w*`` (the numerator is
    increasing, the denominator saturates at ``w`` once ``c + w* >= w``), so
    the maximum is attained at ``w* = 0`` or ``w* = w`` — checked on a grid
    as well for safety.
    """
    candidates = [0.0, w, max(0.0, w - c)]
    candidates += list(np.linspace(0.0, w, 33))
    return max(
        expected_ratio(rho, c, w, ws, alpha, objective) for ws in candidates
    )


def best_rho(c: float, w: float, alpha: float, objective: Objective) -> tuple[float, float]:
    """The algorithm's best query probability and the resulting game value.

    Minimises :func:`worst_case_ratio` over ``rho`` in ``[0, 1]`` (the
    function is the max of two affine functions of ``rho``, hence convex).
    """
    res = optimize.minimize_scalar(
        lambda rho: worst_case_ratio(rho, c, w, alpha, objective),
        bounds=(0.0, 1.0),
        method="bounded",
        options={"xatol": 1e-10},
    )
    return float(res.x), float(res.fun)


def randomized_lower_bound(alpha: float, objective: Objective) -> tuple[float, float]:
    """The adversary's best instance: ``max over w`` of the game value.

    Normalizes ``c = 1`` (scale invariance) and searches over the ratio
    ``theta = w / c``.  Returns ``(theta*, value)``.  Lemma 4.4 predicts the
    value ``4/3`` for max speed (at ``theta = 2``) and ``(1 + phi**alpha)/2``
    for energy (at ``theta = phi``).
    """
    res = optimize.minimize_scalar(
        lambda theta: -best_rho(1.0, theta, alpha, objective)[1],
        bounds=(1.0, 4.0),
        method="bounded",
        options={"xatol": 1e-10},
    )
    return float(res.x), float(-res.fun)


def lemma44_energy_bound(alpha: float) -> float:
    """The claimed energy lower bound ``(1 + phi**alpha) / 2``."""
    return 0.5 * (1.0 + PHI**alpha)


LEMMA44_MAX_SPEED_BOUND: float = 4.0 / 3.0


@dataclass(frozen=True)
class RandomizedGameSolution:
    """A solved single-job randomized game (used in reports)."""

    alpha: float
    objective: Objective
    theta: float
    rho: float
    value: float
    claimed: float


def solve_game(alpha: float, objective: Objective) -> RandomizedGameSolution:
    """Solve the full game and pair it with the paper's claimed bound."""
    theta, value = randomized_lower_bound(alpha, objective)
    rho, _ = best_rho(1.0, theta, alpha, objective)
    claimed = (
        lemma44_energy_bound(alpha)
        if objective == "energy"
        else LEMMA44_MAX_SPEED_BOUND
    )
    return RandomizedGameSolution(alpha, objective, theta, rho, value, claimed)
