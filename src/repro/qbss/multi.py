"""AVRQ(m) — Average Rate with Queries on m parallel machines (Sec. 6).

Like AVRQ, every job is queried with the equal-window split: each arriving
job spawns ``zeta(j) = (r, (r+d)/2, c)`` and, at the midpoint,
``zeta'(j) = ((r+d)/2, d, w*)``.  AVR(m) — the Albers et al. multi-machine
Average Rate algorithm — runs over the derived stream.

Guarantee (Theorem 6.3 + Corollary 6.4): machine-by-machine
``s_i^{AVRQ(m)}(t) <= 2 s_i^{AVR*(m)}(t)``, hence
``2^alpha (2^{alpha-1} alpha^alpha + 1)``-competitive for energy.
"""

from __future__ import annotations

from ..core.instance import QBSSInstance
from ..speed_scaling.multi.avr_m import AVRmResult, avr_m
from .avrq import check_queries_complete
from .policies import AlwaysQuery, EqualWindowSplit
from .result import QBSSResult
from .transform import derive_online


def avrq_m(qinstance: QBSSInstance, *, split_policy=None) -> QBSSResult:
    """Run AVRQ(m) on the instance's ``machines`` parallel machines.

    ``split_policy`` defaults to the paper's equal window, mirroring
    :func:`~repro.qbss.avrq.avrq`.
    """
    m = qinstance.machines
    derived = derive_online(
        qinstance, AlwaysQuery(), split_policy or EqualWindowSplit()
    )
    result: AVRmResult = avr_m(derived.jobs, m)
    check_queries_complete(derived, result.schedule)
    return QBSSResult(
        result.schedule,
        result.profiles,
        derived.instance(m),
        derived.decisions,
        qinstance,
        f"AVRQ({m})",
    )
