"""Common result object for QBSS algorithm runs."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.feasibility import FeasibilityReport, check_feasible
from ..core.instance import Instance, QBSSInstance
from ..core.power import PowerFunction
from ..core.profile import SpeedProfile, profiles_energy, profiles_max_speed
from ..core.schedule import Schedule
from .decisions import DecisionLog


@dataclass
class QBSSResult:
    """What every QBSS algorithm returns.

    Attributes
    ----------
    schedule:
        Concrete executed schedule over the derived classical jobs.
    profiles:
        Per-machine speed profiles (length 1 on a single machine).
    derived:
        The derived classical instance actually executed (query jobs,
        revealed-load jobs, full-workload jobs).
    decisions:
        Which original jobs were queried and where they were split.
    source:
        The QBSS instance the run was made on.
    algorithm:
        Human-readable algorithm name (for reports).
    """

    schedule: Schedule
    profiles: list[SpeedProfile]
    derived: Instance
    decisions: DecisionLog
    source: QBSSInstance
    algorithm: str = ""

    @property
    def profile(self) -> SpeedProfile:
        """The single-machine profile (raises on multi-machine results)."""
        if len(self.profiles) != 1:
            raise ValueError(
                f"run has {len(self.profiles)} machine profiles; use .profiles"
            )
        return self.profiles[0]

    def energy(self, power: PowerFunction) -> float:
        """Total energy across machines (shared kernel sum)."""
        return profiles_energy(self.profiles, power)

    def max_speed(self) -> float:
        """Peak speed across machines."""
        return profiles_max_speed(self.profiles)

    def validate(self, tol: float = 1e-6) -> FeasibilityReport:
        """Check the schedule is feasible for the derived instance."""
        return check_feasible(self.schedule, self.derived, tol=tol)

    def executed_load(self, job_id: str) -> float:
        """Total load executed for an original QBSS job (query + work)."""
        total = 0.0
        for jid, w in self.schedule.work_by_job().items():
            if jid == job_id or jid.rsplit(":", 1)[0] == job_id:
                total += w
        return total
