"""CRAD — Common Release, Arbitrary Deadlines (paper Sec. 4.4).

Round every deadline *down* to the nearest power of two and run CRP2D on
the rounded instance.  Shrinking windows only makes the problem harder, so
the resulting schedule is feasible for the original instance verbatim;
Lemma 4.14 bounds the optimal-energy inflation of the rounding by
``2^alpha``, giving the overall ``(8 phi)^alpha`` ratio (Corollary 4.15).
"""

from __future__ import annotations

from ..core.compat import absorb_positional
from ..core.constants import EPS
from ..core.instance import QBSSInstance
from ..core.profile import SpeedProfile
from ..core.schedule import Schedule
from .crp2d import crp2d
from .decisions import DecisionLog
from .policies import QueryPolicy
from .result import QBSSResult


def crad(
    qinstance: QBSSInstance,
    *args,
    query_policy: QueryPolicy | None = None,
) -> QBSSResult:
    """Run CRAD: deadline rounding + CRP2D.

    The returned result reports the *original* instance as its source (all
    ratios are measured against the original clairvoyant optimum), while its
    derived instance and schedule come from the rounded run.
    """
    (query_policy,) = absorb_positional(
        "crad", args, ("query_policy",), (query_policy,)
    )
    if len(qinstance) == 0:
        return QBSSResult(
            Schedule(1), [SpeedProfile()],
            qinstance.clairvoyant_instance(), DecisionLog(), qinstance, "CRAD",
        )
    if qinstance.machines != 1:
        raise ValueError("CRAD is a single-machine algorithm")
    if any(abs(j.release) > EPS for j in qinstance):
        raise ValueError("CRAD requires all releases at time 0")

    rounded = qinstance.rounded_down_deadlines()
    inner = crp2d(rounded, query_policy=query_policy)
    return QBSSResult(
        schedule=inner.schedule,
        profiles=inner.profiles,
        derived=inner.derived,
        decisions=inner.decisions,
        source=qinstance,
        algorithm="CRAD",
    )
