"""Derived classical instances used by the QBSS algorithms and analyses.

The paper's machinery reduces uncertain jobs to classical jobs in a handful
of recurring ways:

* the clairvoyant instance ``I*`` — ``(r_j, d_j, p*_j)`` (Sec. 3);
* the analysis instances of Sec. 4.3 / Figure 1: ``I'`` keeps the original
  windows but splits queried jobs into a ``c_j`` job and a ``w*_j`` job, and
  ``I'_1/2`` additionally halves the windows (query in the first half,
  revealed load in the second);
* the *online derivation*: each queried job spawns a query job
  ``(r_j, tau_j, c_j)`` at time ``r_j`` and a revealed job
  ``(tau_j, d_j, w*_j)`` at time ``tau_j``; an unqueried job spawns
  ``(r_j, d_j, w_j)``.  This is the input AVRQ/BKPQ/OAQ/AVRQ(m) feed to
  their classical counterparts.

Information discipline: the online derivation obtains ``w*`` through the
:class:`~repro.core.qjob.QJobView` query protocol, stamping the revelation
at the split point; the analysis instances read the truth directly (they are
proof devices, not algorithms) and take raw :class:`QJob`s.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..core.events import Arrival, OnlineStream
from ..core.instance import Instance, QBSSInstance
from ..core.job import Job
from ..core.qjob import QJob, QJobView
from .decisions import DecisionLog, QueryDecision
from .policies import QueryPolicy, SplitPolicy


# -- analysis instances (Figure 1) ------------------------------------------------


def instance_star(qinstance: QBSSInstance) -> Instance:
    """``I*``: the clairvoyant instance ``(r_j, d_j, p*_j)``."""
    return qinstance.clairvoyant_instance()


def instance_prime(
    qinstance: QBSSInstance, queried: Callable[[QJob], bool]
) -> Instance:
    """``I'``: queried jobs split into ``(r, d, c)`` and ``(r, d, w*)``.

    ``queried`` decides membership of the set ``B`` (e.g. the golden-ratio
    rule applied to the known attributes).
    """
    jobs: list[Job] = []
    for j in qinstance:
        if queried(j):
            jobs.append(Job(j.release, j.deadline, j.query_cost, j.id + ":q"))
            jobs.append(Job(j.release, j.deadline, j.work_true, j.id + ":w"))
        else:
            jobs.append(Job(j.release, j.deadline, j.work_upper, j.id + ":full"))
    return Instance(jobs, qinstance.machines)


def instance_prime_half(
    qinstance: QBSSInstance, queried: Callable[[QJob], bool]
) -> Instance:
    """``I'_1/2``: like ``I'`` but with halved windows for queried jobs.

    Queried job ``j`` becomes ``(r, (r+d)/2, c)`` and ``((r+d)/2, d, w*)``.
    The paper states it for common release 0 where the midpoint is ``d/2``;
    we keep the general form so the same code serves online analyses.
    """
    jobs: list[Job] = []
    for j in qinstance:
        if queried(j):
            mid = j.midpoint
            jobs.append(Job(j.release, mid, j.query_cost, j.id + ":q"))
            jobs.append(Job(mid, j.deadline, j.work_true, j.id + ":w"))
        else:
            jobs.append(Job(j.release, j.deadline, j.work_upper, j.id + ":full"))
    return Instance(jobs, qinstance.machines)


# -- online derivation --------------------------------------------------------------


@dataclass
class DerivedOnline:
    """Result of deriving the online classical stream from a QBSS instance.

    Attributes
    ----------
    stream:
        Arrivals of the derived classical jobs (query jobs at ``r_j``,
        revealed jobs at ``tau_j``, unqueried jobs at ``r_j``).
    jobs:
        The derived jobs in arrival order (convenience).
    decisions:
        What was decided per original job.
    views:
        The views used, with their revelation audit trail.
    """

    stream: OnlineStream
    jobs: list[Job]
    decisions: DecisionLog
    views: list[QJobView]

    def instance(self, machines: int = 1) -> Instance:
        """The derived jobs as a classical instance (for feasibility checks)."""
        return Instance(self.jobs, machines)


def derive_online(
    qinstance: QBSSInstance,
    query_policy: QueryPolicy,
    split_policy: SplitPolicy,
) -> DerivedOnline:
    """Apply the policies to every job and build the derived arrival stream.

    The decision for a job is taken at its release from the *view* only.
    For queried jobs the exact load is obtained via ``view.reveal(tau)``,
    which stamps the revelation at the split point — reading it earlier is
    structurally impossible.
    """
    log = DecisionLog()
    arrivals: list[Arrival] = []
    views = qinstance.views()
    for view in views:
        if query_policy.should_query(view):
            x = split_policy.split_fraction(view)
            tau = view.split_point(x)
            qjob = Job(view.release, tau, view.query_cost, view.id + ":query")
            wstar = view.reveal(tau)
            wjob = Job(tau, view.deadline, wstar, view.id + ":work")
            arrivals.append(Arrival(view.release, qjob))
            arrivals.append(Arrival(tau, wjob))
            log.record(view.id, QueryDecision(True, x))
        else:
            full = view.as_upper_bound_job()
            arrivals.append(Arrival(view.release, full))
            log.record(view.id, QueryDecision(False))
    stream = OnlineStream(arrivals)
    jobs = [a.job for a in stream]
    return DerivedOnline(stream, jobs, log, views)


# -- helpers shared by the offline algorithms ---------------------------------------


def partition_golden(
    qinstance: QBSSInstance,
) -> tuple[list[QJob], list[QJob]]:
    """Split jobs into ``(A, B)`` per the golden-ratio rule.

    ``A`` holds the jobs executed without a query (``c_j > w_j / phi``),
    ``B`` the queried ones (``c_j <= w_j / phi``) — the notation of
    Sections 4.2–4.4.
    """
    from ..core.constants import PHI

    a_set = [j for j in qinstance if j.query_cost > j.work_upper / PHI]
    b_set = [j for j in qinstance if j.query_cost <= j.work_upper / PHI]
    return a_set, b_set
