"""The QBSS algorithms — the paper's contribution.

Offline (common release): CRCD, CRP2D, CRAD.
Online: AVRQ, BKPQ, OAQ (extension), AVRQ(m).
Plus the clairvoyant baseline, query/split policies, derived-instance
transformations and the randomized single-job game of Lemma 4.4.
"""

from .avrq import avrq, check_queries_complete
from .bkpq import bkpq
from .clairvoyant import ClairvoyantBaseline, clairvoyant, optimal_energy, optimal_max_speed
from .crad import crad
from .crcd import crcd, crcd_tuned
from .crp2d import crp2d, max_deadline_exponent
from .decisions import NO_QUERY, DecisionLog, QueryDecision, equal_window
from .multi import avrq_m
from .nonmigratory import avrq_nm
from .oaq import oaq
from .oaq_m import oaq_m
from .registry import ALGORITHMS, AlgorithmSpec, get_algorithm, run_algorithm
from .simulation import incremental_profile, verify_causality
from .policies import (
    AlwaysQuery,
    EqualWindowSplit,
    FixedSplit,
    NeverQuery,
    OracleQuery,
    OracleSplit,
    ProportionalSplit,
    RandomizedQuery,
    ThresholdQuery,
    golden_ratio_policy,
)
from .result import QBSSResult
from .transform import (
    DerivedOnline,
    derive_online,
    instance_prime,
    instance_prime_half,
    instance_star,
    partition_golden,
)

__all__ = [
    "avrq",
    "check_queries_complete",
    "bkpq",
    "ClairvoyantBaseline",
    "clairvoyant",
    "optimal_energy",
    "optimal_max_speed",
    "crad",
    "crcd",
    "crcd_tuned",
    "crp2d",
    "max_deadline_exponent",
    "NO_QUERY",
    "DecisionLog",
    "QueryDecision",
    "equal_window",
    "avrq_m",
    "avrq_nm",
    "oaq",
    "oaq_m",
    "ALGORITHMS",
    "AlgorithmSpec",
    "get_algorithm",
    "run_algorithm",
    "incremental_profile",
    "verify_causality",
    "AlwaysQuery",
    "EqualWindowSplit",
    "FixedSplit",
    "NeverQuery",
    "OracleQuery",
    "OracleSplit",
    "ProportionalSplit",
    "RandomizedQuery",
    "ThresholdQuery",
    "golden_ratio_policy",
    "QBSSResult",
    "DerivedOnline",
    "derive_online",
    "instance_prime",
    "instance_prime_half",
    "instance_star",
    "partition_golden",
]
