"""Event-driven replay of the online QBSS algorithms.

The batch implementations of AVRQ and BKPQ construct their speed profiles
from the full derived job list, relying on the fact that both formulas are
*causal* (the speed at time t only references jobs arrived by t).  This
module makes that claim falsifiable: :func:`incremental_profile` rebuilds
the profile through a genuine event loop — at each arrival or query
completion it recomputes the speed from exactly the jobs known *at that
moment* and commits it only until the next event — and
:func:`verify_causality` checks the committed profile equals the batch one.

Any information leak in the batch path (e.g. a revealed load influencing
the speed before its query completed) would make the two profiles diverge;
the test suite runs this check over random instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..core.constants import EPS
from ..core.instance import QBSSInstance
from ..core.job import Job
from ..core.profile import Segment, SpeedProfile
from ..core.timeline import dedupe_times
from .policies import EqualWindowSplit, QueryPolicy, SplitPolicy
from .registry import get_algorithm, run_algorithm

#: Any :data:`~repro.qbss.registry.ALGORITHMS` name whose spec carries a
#: ``profile_fn`` (currently ``"avrq"`` and ``"bkpq"``) can be replayed.
AlgorithmName = str


@dataclass
class ReplayStep:
    """One committed window of the event loop (for inspection/debugging)."""

    start: float
    end: float
    known_jobs: list[str]
    speed_at_start: float


@dataclass
class ReplayResult:
    """The incrementally committed profile plus the step trace."""

    profile: SpeedProfile
    steps: list[ReplayStep]


def incremental_profile(
    qinstance: QBSSInstance,
    algorithm: AlgorithmName,
    query_policy: QueryPolicy | None = None,
    split_policy: SplitPolicy | None = None,
) -> ReplayResult:
    """Replay an online algorithm event by event (see module docstring)."""
    spec = get_algorithm(algorithm)
    if spec.profile_fn is None or spec.default_query is None:
        raise ValueError(
            f"algorithm {algorithm!r} has no causal batch profile formula; "
            "only profile-based online algorithms support incremental replay"
        )
    profile_fn: Callable[[Sequence[Job]], SpeedProfile] = spec.profile_fn
    qpol = query_policy or spec.default_query()
    spol = split_policy or EqualWindowSplit()

    # Pre-compute each job's decision (taken at its release from the view,
    # never from w*) and the event times.
    views = qinstance.views()
    decisions = {}
    events: list[float] = []
    for view in views:
        events.append(view.release)
        if qpol.should_query(view):
            x = spol.split_fraction(view)
            decisions[view.id] = (True, view.split_point(x))
            events.append(view.split_point(x))
        else:
            decisions[view.id] = (False, None)
    horizon = max(j.deadline for j in qinstance) if len(qinstance) else 0.0
    events = dedupe_times(events + [horizon])

    known: list[Job] = []
    segments: list[Segment] = []
    steps: list[ReplayStep] = []

    for t, nxt in zip(events, events[1:]):
        # deliver everything that becomes known at time t
        for view in views:
            queried, tau = decisions[view.id]
            if abs(view.release - t) <= EPS:
                if queried:
                    known.append(
                        Job(view.release, tau, view.query_cost, view.id + ":query")
                    )
                else:
                    known.append(view.as_upper_bound_job())
            if queried and abs(tau - t) <= EPS:
                wstar = view.reveal(tau)  # legal: the query deadline is tau
                known.append(Job(tau, view.deadline, wstar, view.id + ":work"))

        # recompute the algorithm's profile from the *current* knowledge and
        # commit it only until the next event
        current = profile_fn(known)
        for seg in current.restrict(t, nxt):
            segments.append(seg)
        steps.append(
            ReplayStep(
                start=t,
                end=nxt,
                known_jobs=sorted(j.id for j in known),
                speed_at_start=current.speed_at(0.5 * (t + nxt)),
            )
        )

    return ReplayResult(SpeedProfile(segments), steps)


def verify_causality(
    qinstance: QBSSInstance,
    algorithm: AlgorithmName,
    tol: float = 1e-9,
) -> bool:
    """Does the event-driven replay match the batch construction exactly?

    ``algorithm`` is any :data:`~repro.qbss.registry.ALGORITHMS` name whose
    spec supports replay; the batch run dispatches through the registry.
    """
    replayed = incremental_profile(qinstance, algorithm).profile
    batch = run_algorithm(algorithm, qinstance).profile
    pts = sorted(set(replayed.breakpoints()) | set(batch.breakpoints()))
    for a, b in zip(pts, pts[1:]):
        if b - a <= tol:
            continue
        mid = 0.5 * (a + b)
        ra, ba = replayed.speed_at(mid), batch.speed_at(mid)
        if abs(ra - ba) > tol * max(1.0, ra, ba):
            return False
    return True
