"""CRCD — Common Release, Common Deadline (paper Algorithm 1, Sec. 4.2).

All jobs share the window ``(r0, r0 + D]``.  The algorithm:

1. partitions the jobs with the golden-ratio rule into ``A`` (no query,
   ``c_j > w_j/phi``) and ``B`` (query, ``c_j <= w_j/phi``);
2. first half ``(r0, r0 + D/2]``: runs every query ``c_j`` (jobs in ``B``)
   and *half* of every unqueried workload ``w_j/2`` (jobs in ``A``) at the
   constant speed equal to the sum of their densities;
3. at the half point every query has completed, revealing the exact loads;
4. second half: runs the revealed loads ``w*_j`` and the remaining halves
   ``w_j/2`` at the sum of their densities.

Guarantees (Theorem 4.6): 2-approximate for maximum speed and
``min{2^{alpha-1} phi^alpha, 2^alpha}``-approximate for energy, with the
refined ``rho_3`` ratio of Theorem 4.8 for ``alpha >= 2``.
"""

from __future__ import annotations


from ..core.compat import absorb_positional
from ..core.constants import EPS
from ..core.instance import Instance, QBSSInstance
from ..core.job import Job
from ..core.profile import Segment, SpeedProfile
from ..core.schedule import Schedule
from .decisions import DecisionLog, QueryDecision
from .packing import pack_sequential
from .policies import QueryPolicy, golden_ratio_policy
from .result import QBSSResult


def crcd(
    qinstance: QBSSInstance,
    *args,
    query_policy: QueryPolicy | None = None,
) -> QBSSResult:
    """Run CRCD on a common-release common-deadline instance.

    ``query_policy`` defaults to the golden-ratio rule; the ablation benches
    inject other policies to quantify how much the rule matters.
    """
    (query_policy,) = absorb_positional(
        "crcd", args, ("query_policy",), (query_policy,)
    )
    return crcd_tuned(qinstance, query_policy=query_policy)


def crcd_tuned(
    qinstance: QBSSInstance,
    x: float = 0.5,
    lam: float = 0.5,
    query_policy: QueryPolicy | None = None,
    name: str = "CRCD",
) -> QBSSResult:
    """CRCD's design space opened up: phase split ``x`` and workload split
    ``lam``.

    Phase 1 is ``(r0, r0 + x D]`` and runs every query plus the fraction
    ``lam`` of each un-queried workload; phase 2 runs the revealed loads
    plus the remaining ``1 - lam``.  ``x = lam = 1/2`` is exactly the
    paper's Algorithm 1; the minimax experiment
    (:func:`repro.analysis.experiments.experiment_minimax`) shows other
    points can win per instance, and the ``crcd-design-space`` bench sweeps
    the plane empirically.
    """
    if not 0.0 < x < 1.0:
        raise ValueError(f"phase split x must be in (0, 1), got {x}")
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"workload split lam must be in [0, 1], got {lam}")
    if qinstance.machines != 1:
        raise ValueError("CRCD is a single-machine algorithm")
    if len(qinstance) == 0:
        return QBSSResult(
            Schedule(1), [SpeedProfile()], Instance([]), DecisionLog(), qinstance, name
        )
    if not qinstance.common_release or not qinstance.common_deadline:
        raise ValueError("CRCD requires a common release and a common deadline")

    policy = query_policy or golden_ratio_policy()
    r0 = qinstance.jobs[0].release
    d = qinstance.jobs[0].deadline
    half = r0 + x * (d - r0)
    half_len = half - r0

    log = DecisionLog()
    views = qinstance.views()

    # -- phase 1: queries (B) + the lam-fraction of unqueried workloads (A) ---
    first_works: list[tuple[str, float]] = []
    derived: list[Job] = []
    queried_views = []
    for view in views:
        if policy.should_query(view):
            log.record(view.id, QueryDecision(True, x))
            first_works.append((view.id + ":query", view.query_cost))
            derived.append(Job(r0, half, view.query_cost, view.id + ":query"))
            queried_views.append(view)
        else:
            log.record(view.id, QueryDecision(False))
            part = lam * view.work_upper
            if part > EPS:
                first_works.append((view.id + ":full1", part))
                derived.append(Job(r0, half, part, view.id + ":full1"))

    s1 = sum(w for _, w in first_works) / half_len
    schedule = Schedule(1)
    if s1 > 0:
        for sl in pack_sequential(first_works, r0, half, s1):
            schedule.add(sl.start, sl.end, sl.speed, sl.job_id)

    # -- split point: all queries are complete; reveal the exact loads --------
    queried_ids = {v.id for v in queried_views}
    second_works: list[tuple[str, float]] = []
    for view in views:
        if view.id in queried_ids:
            wstar = view.reveal(half)
            second_works.append((view.id + ":work", wstar))
            derived.append(Job(half, d, wstar, view.id + ":work"))
        else:
            part = (1.0 - lam) * view.work_upper
            if part > EPS:
                second_works.append((view.id + ":full2", part))
                derived.append(Job(half, d, part, view.id + ":full2"))

    s2 = sum(w for _, w in second_works) / (d - half)
    if s2 > 0:
        for sl in pack_sequential(second_works, half, d, s2):
            schedule.add(sl.start, sl.end, sl.speed, sl.job_id)

    segments = []
    if s1 > 0:
        segments.append(Segment(r0, half, s1))
    if s2 > 0:
        segments.append(Segment(half, d, s2))
    profile = SpeedProfile(segments)

    derived_instance = Instance(derived)
    return QBSSResult(
        schedule, [profile], derived_instance, log, qinstance, name
    )
