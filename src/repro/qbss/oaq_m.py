"""OAQ(m): the OA-with-queries extension on m parallel machines.

Combines the Section 7 open question (does OA extend to QBSS?) with the
Section 6 multi-machine setting: golden-ratio queries, equal-window split,
OA(m) replanning over the derived stream.  Purely an empirical extension —
no bound is claimed; the multi-machine bench compares it against AVRQ(m).
"""

from __future__ import annotations

from ..core.compat import absorb_positional
from ..core.constants import DEFAULT_ALPHA
from ..core.instance import QBSSInstance
from ..speed_scaling.multi.oa_m import oa_m
from .avrq import check_queries_complete
from .policies import EqualWindowSplit, QueryPolicy, golden_ratio_policy
from .result import QBSSResult
from .transform import derive_online


def oaq_m(
    qinstance: QBSSInstance,
    *args,
    alpha: float = DEFAULT_ALPHA,
    query_policy: QueryPolicy | None = None,
    split_policy=None,
) -> QBSSResult:
    """Run OAQ(m) on the instance's machines.

    ``alpha`` parameterises the per-arrival energy-optimal replanning (the
    plan depends on the power exponent, unlike AVR's densities).
    """
    alpha, query_policy = absorb_positional(
        "oaq_m", args, ("alpha", "query_policy"), (alpha, query_policy)
    )
    m = qinstance.machines
    policy = query_policy or golden_ratio_policy()
    derived = derive_online(qinstance, policy, split_policy or EqualWindowSplit())
    result = oa_m(derived.jobs, m, alpha=alpha)
    if not result.feasible:  # pragma: no cover - replanned optima are feasible
        raise RuntimeError(
            f"OAQ(m) internal error: unfinished {result.unfinished}"
        )
    check_queries_complete(derived, result.schedule)
    return QBSSResult(
        result.schedule,
        result.profiles,
        derived.instance(m),
        derived.decisions,
        qinstance,
        f"OAQ({m})",
    )
