"""The clairvoyant optimal baseline.

Section 3 of the paper: *"the optimal offline solution for the QBSS model
coincides with the optimal offline solution in the classical speed scaling
setting by using a job (r_j, d_j, p*_j) for each job j"*, where
``p*_j = min{w_j, c_j + w*_j}``.  Every approximation and competitive ratio
in the library is measured against the values computed here.

Subtlety worth recording: on a single machine the *value* of the optimum
equals YDS on ``I*`` — the optimal schedule can always order a queried job's
query before its revealed load inside the window at the single YDS speed,
so collapsing the pair into one job of load ``p*`` loses nothing.  On ``m``
machines the same argument holds per machine because the optimum never runs
a job parallel to itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.compat import absorb_positional
from ..core.constants import DEFAULT_ALPHA
from ..core.instance import Instance, QBSSInstance
from ..core.power import PowerFunction
from ..core.profile import SpeedProfile
from ..core.schedule import Schedule
from ..speed_scaling.multi.bounds import max_speed_lower_bound, pooled_lower_bound
from ..speed_scaling.multi.optimal import convex_optimal_energy
from ..speed_scaling.yds import yds


@dataclass
class ClairvoyantBaseline:
    """Optimal-energy / optimal-max-speed values for a QBSS instance."""

    instance: QBSSInstance
    star: Instance
    energy_value: float
    max_speed_value: float
    schedule: Schedule | None
    profile: SpeedProfile | None
    exact: bool  # False when the multi-machine value is the pooled lower bound


def clairvoyant(
    qinstance: QBSSInstance,
    *args,
    alpha: float = DEFAULT_ALPHA,
    exact_multi: bool = False,
) -> ClairvoyantBaseline:
    """Compute the clairvoyant optimum for ``qinstance``.

    Single machine: YDS on ``I*`` (exact, with schedule and profile).
    Multiple machines: by default the pooled lower bound (fast, always
    valid — measured ratios become conservative *upper* estimates);
    ``exact_multi=True`` solves the convex program instead (small n only).
    """
    alpha, exact_multi = absorb_positional(
        "clairvoyant", args, ("alpha", "exact_multi"), (alpha, exact_multi)
    )
    star = qinstance.clairvoyant_instance()
    if qinstance.machines == 1:
        result = yds(list(star.jobs))
        power = PowerFunction(alpha)
        return ClairvoyantBaseline(
            instance=qinstance,
            star=star,
            energy_value=result.profile.energy(power),
            max_speed_value=result.profile.max_speed(),
            schedule=result.schedule,
            profile=result.profile,
            exact=True,
        )
    jobs = list(star.jobs)
    m = qinstance.machines
    if exact_multi:
        from ..speed_scaling.multi.optimal import optimal_schedule

        energy = convex_optimal_energy(jobs, m, alpha)
        schedule = optimal_schedule(jobs, m, alpha)
        exact = True
    else:
        energy = pooled_lower_bound(jobs, m, alpha)
        schedule = None
        exact = False
    return ClairvoyantBaseline(
        instance=qinstance,
        star=star,
        energy_value=energy,
        max_speed_value=max_speed_lower_bound(jobs, m),
        schedule=schedule,
        profile=None,
        exact=exact,
    )


def clairvoyant_values(
    qinstance: QBSSInstance,
    *,
    alpha: float = DEFAULT_ALPHA,
    exact_multi: bool = False,
) -> ClairvoyantBaseline:
    """Values-only clairvoyant optimum (no schedule materialisation).

    Produces the same ``energy_value`` / ``max_speed_value`` /
    ``exact`` as :func:`clairvoyant` — bit for bit — but skips
    everything ratio measurement never reads: on a single machine the
    EDF realisation inside each YDS critical interval (via
    :func:`~repro.speed_scaling.yds.yds_profile`), and on multiple
    machines with ``exact_multi`` the ``optimal_schedule`` solve.  The
    fast path for per-shard baselines in trace replay, where one
    baseline serves every algorithm.
    """
    from ..speed_scaling.yds import yds_profile

    star = qinstance.clairvoyant_instance()
    if qinstance.machines == 1:
        profile = yds_profile(list(star.jobs))
        return ClairvoyantBaseline(
            instance=qinstance,
            star=star,
            energy_value=profile.energy(PowerFunction(alpha)),
            max_speed_value=profile.max_speed(),
            schedule=None,
            profile=profile,
            exact=True,
        )
    jobs = list(star.jobs)
    m = qinstance.machines
    if exact_multi:
        energy = convex_optimal_energy(jobs, m, alpha)
        exact = True
    else:
        energy = pooled_lower_bound(jobs, m, alpha)
        exact = False
    return ClairvoyantBaseline(
        instance=qinstance,
        star=star,
        energy_value=energy,
        max_speed_value=max_speed_lower_bound(jobs, m),
        schedule=None,
        profile=None,
        exact=exact,
    )


def optimal_energy(qinstance: QBSSInstance, alpha: float, exact_multi: bool = False) -> float:
    """Clairvoyant optimal energy (see :func:`clairvoyant`)."""
    return clairvoyant(qinstance, alpha=alpha, exact_multi=exact_multi).energy_value


def optimal_max_speed(qinstance: QBSSInstance) -> float:
    """Clairvoyant optimal maximum speed."""
    return clairvoyant(qinstance, alpha=2.0).max_speed_value
