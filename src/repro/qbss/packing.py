"""Sequential packing of work onto a single machine at a given speed.

CRCD and CRP2D describe their schedules as "execute the jobs in an arbitrary
order during the interval using speed s".  This helper realises that: given
``(job_id, work)`` pairs, an interval and a constant speed, it lays the jobs
head-to-tail.  The caller guarantees the interval has enough capacity; any
slack is left idle at the end of the interval.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.constants import EPS
from ..core.schedule import Slice


def pack_sequential(
    works: Sequence[tuple[str, float]],
    start: float,
    end: float,
    speed: float,
) -> list[Slice]:
    """Lay ``works`` head-to-tail in ``[start, end)`` at constant ``speed``."""
    duration = end - start
    if duration <= 0:
        raise ValueError("packing interval must have positive duration")
    total = sum(w for _, w in works)
    if total <= EPS:
        return []
    if speed <= 0:
        raise ValueError("positive work needs positive speed")
    capacity = speed * duration
    if total > capacity * (1 + 1e-9) + EPS:
        raise ValueError(
            f"interval capacity {capacity} too small for total work {total}"
        )
    out: list[Slice] = []
    t = start
    for job_id, w in works:
        if w <= EPS:
            continue
        t2 = min(t + w / speed, end)
        out.append(Slice(t, t2, speed, job_id))
        t = t2
    return out
