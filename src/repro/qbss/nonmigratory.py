"""AVRQ-NM: the non-migratory QBSS variant (paper Sec. 7 remark).

Every job is queried with the equal-window split, exactly as AVRQ(m), but
both derived pieces of a job (query + revealed load) are pinned to one
machine chosen at *arrival* — the natural non-migratory reading: the query
learns the job's true size on the machine that will run it.

The per-machine scheduler is AVR over the machine's own derived jobs, so
the guarantee structure mirrors Theorem 6.3 machine-by-machine against the
non-migratory AVR baseline; the ablation bench quantifies the energy cost
of forbidding migration versus AVRQ(m).
"""

from __future__ import annotations


from ..core.constants import EPS
from ..core.edf import run_edf
from ..core.instance import QBSSInstance
from ..core.job import Job
from ..speed_scaling.avr import avr_profile
from .avrq import check_queries_complete
from .policies import AlwaysQuery, EqualWindowSplit
from .result import QBSSResult
from .transform import derive_online


def avrq_nm(qinstance: QBSSInstance) -> QBSSResult:
    """Run the non-migratory AVRQ variant on the instance's machines."""
    m = qinstance.machines
    derived = derive_online(qinstance, AlwaysQuery(), EqualWindowSplit())

    # Pin each original job to a machine at its arrival: least overlapping
    # assigned density over the job's window (arrival order = release order).
    assignment: dict[str, int] = {}
    pinned: list[list[Job]] = [[] for _ in range(m)]

    def overlap_density(machine_jobs: list[Job], lo: float, hi: float) -> float:
        total = 0.0
        for other in machine_jobs:
            a, b = max(other.release, lo), min(other.deadline, hi)
            if b > a:
                total += other.density * (b - a) / max(hi - lo, EPS)
        return total

    derived_by_source: dict[str, list[Job]] = {}
    for job in derived.jobs:
        derived_by_source.setdefault(job.id.rsplit(":", 1)[0], []).append(job)

    for view in sorted(derived.views, key=lambda v: (v.release, v.id)):
        best = min(
            range(m),
            key=lambda mi: (
                overlap_density(pinned[mi], view.release, view.deadline),
                mi,
            ),
        )
        assignment[view.id] = best
        pinned[best].extend(derived_by_source[view.id])

    # Per-machine AVR over the pinned derived jobs.
    from ..core.schedule import Schedule

    schedule = Schedule(m)
    profiles = []
    for mi in range(m):
        profile = avr_profile(pinned[mi])
        profiles.append(profile)
        edf = run_edf(pinned[mi], profile, machine=mi, machines=m)
        if not edf.feasible:  # pragma: no cover - AVR per machine is feasible
            raise RuntimeError(
                f"AVRQ-NM internal error on machine {mi}: {edf.unfinished}"
            )
        for s in edf.schedule.slices(mi):
            schedule.add(s.start, s.end, s.speed, s.job_id, mi)

    check_queries_complete(derived, schedule)
    return QBSSResult(
        schedule, profiles, derived.instance(m), derived.decisions,
        qinstance, f"AVRQ-NM({m})",
    )
