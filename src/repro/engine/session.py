"""Execution sessions: one object owning the engine's execution context.

Before 1.2, every entry point that wanted hardened execution —
:func:`repro.engine.runner.run_experiments`,
:func:`repro.traces.replay.replay_jobs` — threaded the same nine knobs by
hand (pool size, cache toggle and directory, package version, deadline,
retry policy, fault plan, tracer, metrics) into
:func:`~repro.engine.runner.execute_hardened` and
:class:`~repro.engine.cache.ResultCache`.  :class:`ExecutionSession`
bundles them: construct one, hand it to any number of runs, and the pool
configuration, cache handle and observability sinks are shared — the
prerequisite shape for a long-lived ``qbss-serve`` process, where a single
session must outlive many requests.

The legacy keyword arguments on the entry points still work; passing them
*alongside* an explicit ``session=`` is deprecated (the values override
the session's fields for that call, with a :class:`DeprecationWarning`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any
from collections.abc import Callable, Iterable

from .backends.base import Backend, create_backend, parse_backend_spec
from .cache import ResultCache
from .faults import FaultPlan, RetryPolicy
from .runner import (
    _UNSET,
    ExecutionStats,
    HardenedTask,
    execute_hardened,
    resolve_jobs,
)

#: Sentinel distinguishing "caller did not pass this legacy kwarg" from an
#: explicit ``None`` (several knobs have ``None`` as a meaningful value).
#: Shared with the entry points' keyword defaults in ``runner.py``.
UNSET: Any = _UNSET


@dataclass
class ExecutionSession:
    """The execution context shared by engine and replay runs.

    Fields mirror the legacy per-call kwargs one for one:

    * ``jobs`` — pool size request (``int``, ``0``/``"auto"`` = per-CPU);
    * ``cache``/``cache_dir``/``package_version`` — the content-addressed
      :class:`~repro.engine.cache.ResultCache` configuration;
    * ``task_timeout``/``retry``/``fault_plan`` — the hardening layer;
    * ``tracer``/``metrics`` — the observability sinks
      (:class:`repro.obs.Tracer` / :class:`repro.obs.MetricsRegistry`);
    * ``backend`` — where tasks execute: a spec string (``"serial"``,
      ``"pool"``, ``"remote:HOST:PORT[,...]"``), a constructed
      :class:`~repro.engine.backends.Backend`, or ``None`` for the
      default local pool (see :mod:`repro.engine.backends`).

    The cache handle is created lazily on first use and then reused for
    the session's lifetime, so warm lookups across consecutive runs share
    one store (and one quarantine tally — callers measure deltas).

    Long-lived holders (``qbss-serve``) retire a session with
    :meth:`close` — idempotent, after which :meth:`execute` and
    :attr:`store` raise :class:`RuntimeError` — or use the session as a
    context manager.
    """

    jobs: int | str = 1
    cache: bool = True
    cache_dir: str | Path | None = None
    package_version: str | None = None
    task_timeout: float | None = None
    retry: RetryPolicy | None = None
    fault_plan: FaultPlan | None = None
    tracer: Any | None = None
    metrics: Any | None = None
    backend: str | Backend | None = None

    def __post_init__(self) -> None:
        resolve_jobs(self.jobs)  # fail fast on malformed requests
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be > 0, got {self.task_timeout}"
            )
        if isinstance(self.backend, str):
            parse_backend_spec(self.backend)  # fail fast on malformed specs
        self._store: ResultCache | None = None
        self._backend: Backend | None = None
        self._backend_resolved: bool = False
        self._closed: bool = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Retire the session.  Idempotent; drops the cache handle.

        A closed session refuses further work (:meth:`execute` and
        :attr:`store` raise :class:`RuntimeError`) so lifecycle bugs in
        long-lived holders surface as clear errors, not stale-handle
        corruption.
        """
        self._closed = True
        self._store = None
        if self._backend is not None:
            self._backend.close()
            self._backend = None
        self._backend_resolved = False

    def __enter__(self) -> ExecutionSession:
        self._check_open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "ExecutionSession is closed; submitting work to a closed "
                "session is a bug — create a new session instead"
            )

    @property
    def pool_jobs(self) -> int:
        """The resolved concrete worker count (>= 1)."""
        return resolve_jobs(self.jobs)

    @property
    def retry_policy(self) -> RetryPolicy:
        """The retry policy, defaulted (never ``None``)."""
        return self.retry if self.retry is not None else RetryPolicy()

    @property
    def store(self) -> ResultCache | None:
        """The session's result cache (lazy; ``None`` when caching is off)."""
        self._check_open()
        if not self.cache:
            return None
        if self._store is None:
            self._store = ResultCache(self.cache_dir, metrics=self.metrics)
        return self._store

    @property
    def execution_backend(self) -> Backend | None:
        """The resolved :class:`Backend` (lazy; ``None`` = built-in pool).

        A spec string is instantiated once and reused across runs — for
        the remote backend that keeps worker connections warm between
        batches (idle links survive :meth:`Backend.release`), mirroring
        how the cache handle is shared.
        """
        self._check_open()
        if not self._backend_resolved:
            self._backend = create_backend(self.backend)
            self._backend_resolved = True
        return self._backend

    def execute(
        self,
        tasks: Iterable[HardenedTask],
        *,
        worker: Callable[..., dict[str, Any]],
        payload: Callable[[HardenedTask], tuple],
        on_success: Callable[[HardenedTask, dict[str, Any], bool], None],
        on_failure: Callable[[HardenedTask, str, str | None], None],
        jobs: int | None = None,
        max_inflight: int | None = None,
        trace_parent: Any | None = None,
    ) -> ExecutionStats:
        """Run ``tasks`` under this session's hardening and observability.

        Thin wrapper over :func:`~repro.engine.runner.execute_hardened`
        with the session supplying pool size, retry policy, deadline and
        tracer.  ``jobs`` overrides the pool size for this call only (the
        engine shrinks it to the task count).
        """
        self._check_open()
        return execute_hardened(
            tasks,
            worker=worker,
            payload=payload,
            on_success=on_success,
            on_failure=on_failure,
            jobs=self.pool_jobs if jobs is None else jobs,
            retry=self.retry_policy,
            task_timeout=self.task_timeout,
            max_inflight=max_inflight,
            tracer=self.tracer,
            trace_parent=trace_parent,
            backend=self.execution_backend,
        )


def session_from_kwargs(
    session: ExecutionSession | None,
    *,
    warn_name: str,
    **legacy: Any,
) -> ExecutionSession:
    """Merge an optional explicit session with legacy per-call kwargs.

    ``legacy`` values equal to :data:`UNSET` were not passed by the
    caller.  Without a session, the explicit kwargs simply construct one
    (the pre-1.2 behaviour, no warning).  With a session, explicit kwargs
    are deprecated pass-throughs: they override the session's fields for
    this call behind a :class:`DeprecationWarning` naming the new form.
    """
    explicit = {k: v for k, v in legacy.items() if v is not UNSET}
    if session is None:
        return ExecutionSession(**explicit)
    if explicit:
        names = ", ".join(sorted(explicit))
        warnings.warn(
            f"passing {names} to {warn_name}() alongside session= is "
            f"deprecated; set them on the ExecutionSession instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return replace(session, **explicit)
    return session
