"""Content-addressed on-disk cache for experiment reports.

A cache entry is keyed by the SHA-256 of ``(experiment name, resolved
kwargs, package version)`` — the *resolved* kwargs, i.e. signature defaults
merged with overrides, so explicitly passing a default value hits the same
entry as omitting it.  Entries are versioned JSON documents written
atomically; a corrupt or wrong-version file is treated as a miss, never an
error.

Layout under the cache root (see ``docs/api.md``)::

    <root>/<digest[:2]>/<digest>.json

Each file holds an envelope ``{cache_version, key, experiment, params,
package_version, wall_time, report}`` where ``report`` is the
``experiment_report`` document of :mod:`repro.io`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .. import __version__ as PACKAGE_VERSION

CACHE_FORMAT_VERSION = 1

PathLike = Union[str, Path]


def default_cache_dir() -> Path:
    """``$QBSS_CACHE_DIR``, else ``$XDG_CACHE_HOME/qbss-repro``, else
    ``~/.cache/qbss-repro``."""
    env = os.environ.get("QBSS_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "qbss-repro"


def cache_key(
    experiment: str,
    resolved_kwargs: Dict[str, Any],
    package_version: Optional[str] = None,
) -> str:
    """The content address of one experiment evaluation (SHA-256 hex).

    ``resolved_kwargs`` must already be in JSON form (the ``resolved`` dict
    of :func:`repro.analysis.experiments.resolve_kwargs`); any change to the
    experiment name, a parameter value, or the package version changes the
    key, which is what invalidates stale entries across releases.
    """
    material = json.dumps(
        {
            "experiment": experiment,
            "kwargs": resolved_kwargs,
            "package_version": package_version or PACKAGE_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass
class ResultCache:
    """The on-disk store; all methods are safe on a missing/corrupt tree."""

    root: Path

    def __init__(self, root: Optional[PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored envelope for ``key``, or ``None`` on any miss."""
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("cache_version") != CACHE_FORMAT_VERSION
            or data.get("key") != key
        ):
            return None
        return data

    def put(
        self,
        key: str,
        experiment: str,
        params: Dict[str, Any],
        report_doc: Dict[str, Any],
        wall_time: float,
        package_version: Optional[str] = None,
    ) -> Path:
        """Atomically store one evaluated report; returns the file path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "cache_version": CACHE_FORMAT_VERSION,
            "key": key,
            "experiment": experiment,
            "params": params,
            "package_version": package_version or PACKAGE_VERSION,
            "wall_time": wall_time,
            "report": report_doc,
        }
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(envelope, indent=2, sort_keys=True))
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
