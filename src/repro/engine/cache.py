"""Content-addressed on-disk cache for experiment reports.

A cache entry is keyed by the SHA-256 of ``(experiment name, resolved
kwargs, package version)`` — the *resolved* kwargs, i.e. signature defaults
merged with overrides, so explicitly passing a default value hits the same
entry as omitting it.  Entries are versioned JSON documents written
atomically; a corrupt or wrong-version file is treated as a miss, never an
error.

Layout under the cache root (see ``docs/api.md``)::

    <root>/<digest[:2]>/<digest>.json

Each file holds an envelope ``{cache_version, key, experiment, params,
package_version, wall_time, report}`` where ``report`` is the
``experiment_report`` document of :mod:`repro.io`.

A corrupt entry — zero-byte, truncated, non-JSON, or unreadable — is
never silently deleted: it is moved to ``<root>/quarantine/`` for
post-mortem, counted on :attr:`ResultCache.quarantined`, and the lookup
reports a miss so the result is recomputed.  Well-formed entries from
another cache version simply read as misses (they are overwritten in
place on the next write).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .. import __version__ as PACKAGE_VERSION

CACHE_FORMAT_VERSION = 1

#: Subdirectory of the cache root that corrupt entries are moved into.
QUARANTINE_DIRNAME = "quarantine"

PathLike = str | Path


def default_cache_dir() -> Path:
    """``$QBSS_CACHE_DIR``, else ``$XDG_CACHE_HOME/qbss-repro``, else
    ``~/.cache/qbss-repro``."""
    env = os.environ.get("QBSS_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "qbss-repro"


def cache_key(
    experiment: str,
    resolved_kwargs: dict[str, Any],
    package_version: str | None = None,
) -> str:
    """The content address of one experiment evaluation (SHA-256 hex).

    ``resolved_kwargs`` must already be in JSON form (the ``resolved`` dict
    of :func:`repro.analysis.experiments.resolve_kwargs`); any change to the
    experiment name, a parameter value, or the package version changes the
    key, which is what invalidates stale entries across releases.
    """
    material = json.dumps(
        {
            "experiment": experiment,
            "kwargs": resolved_kwargs,
            "package_version": package_version or PACKAGE_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


#: A ``put`` interrupted between writing its temp file and the atomic
#: rename leaves ``<digest>.tmp<pid>`` behind; sweeps only touch temp
#: files older than this, so a concurrent writer's live temp survives.
ORPHAN_GRACE_SECONDS = 600.0


@dataclass
class ResultCache:
    """The on-disk store; all methods are safe on a missing/corrupt tree.

    ``metrics`` optionally takes a
    :class:`~repro.obs.metrics.MetricsRegistry`; when set, lookups, writes,
    quarantines and prunes increment the ``qbss_cache_*`` series live (see
    ``docs/observability.md``), so long campaigns can be scraped mid-run.
    """

    root: Path

    def __init__(
        self, root: PathLike | None = None, *, metrics: Any | None = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.quarantined = 0  # corrupt entries moved aside by this instance
        self.metrics = metrics

    def _count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc(amount)

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def quarantine(self, path: Path) -> Path | None:
        """Move a corrupt entry into ``<root>/quarantine/`` (never delete).

        Returns the new location, or ``None`` if the move itself failed
        (in which case the entry is left where it was — a later lookup
        will simply try again).
        """
        try:
            qdir = self.quarantine_dir
            qdir.mkdir(parents=True, exist_ok=True)
            target = qdir / path.name
            n = 0
            while target.exists():
                n += 1
                target = qdir / f"{path.stem}.{n}{path.suffix}"
            path.replace(target)
        except OSError:  # pragma: no cover - concurrent cleanup
            return None
        self.quarantined += 1
        self._count("qbss_cache_quarantined_total")
        return target

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored envelope for ``key``, or ``None`` on any miss.

        A file that exists but cannot be parsed — zero-byte, truncated
        mid-write, or otherwise non-JSON — is quarantined (see
        :meth:`quarantine`) and reported as a miss, so callers recompute
        instead of crashing on ``JSONDecodeError``.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self._count("qbss_cache_lookups_total", result="miss")
            return None
        except OSError:
            self.quarantine(path)
            self._count("qbss_cache_lookups_total", result="miss")
            return None
        try:
            data = json.loads(text)
        except ValueError:  # includes JSONDecodeError; "" (zero-byte) too
            self.quarantine(path)
            self._count("qbss_cache_lookups_total", result="miss")
            return None
        if not isinstance(data, dict):
            self.quarantine(path)
            self._count("qbss_cache_lookups_total", result="miss")
            return None
        if (
            data.get("cache_version") != CACHE_FORMAT_VERSION
            or data.get("key") != key
        ):
            # Well-formed but stale (older format / foreign key): a plain
            # miss, left in place to be overwritten by the next put.
            self._count("qbss_cache_lookups_total", result="miss")
            return None
        self._count("qbss_cache_lookups_total", result="hit")
        return data

    def put(
        self,
        key: str,
        experiment: str,
        params: dict[str, Any],
        report_doc: dict[str, Any],
        wall_time: float,
        package_version: str | None = None,
    ) -> Path:
        """Atomically store one evaluated report; returns the file path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "cache_version": CACHE_FORMAT_VERSION,
            "key": key,
            "experiment": experiment,
            "params": params,
            "package_version": package_version or PACKAGE_VERSION,
            "wall_time": wall_time,
            "report": report_doc,
        }
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        # flush + fsync *before* the rename: without it, a power loss can
        # persist the rename but not the data, leaving a torn entry at the
        # final path (a crashed process alone cannot — the kernel keeps
        # buffered writes — but the durability contract covers both).
        with open(tmp, "w") as fh:
            fh.write(json.dumps(envelope, indent=2, sort_keys=True))
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(path)
        self._count("qbss_cache_writes_total")
        return path

    def entries(self) -> list[tuple[Path, float, int]]:
        """Every cache file as ``(path, mtime, size)``, oldest first."""
        found = []
        if not self.root.exists():
            return found
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
            found.append((path, stat.st_mtime, stat.st_size))
        found.sort(key=lambda item: (item[1], str(item[0])))
        return found

    def _entry_paths(self) -> Iterator[Path]:
        """Live entry files — the quarantine directory never counts."""
        for path in self.root.glob("*/*.json"):
            if path.parent.name != QUARANTINE_DIRNAME:
                yield path

    def _orphan_paths(self) -> Iterator[Path]:
        """Leftover ``<digest>.tmp<pid>`` files from interrupted writes.

        A :meth:`put` that dies between ``tmp.write_text`` and
        ``tmp.replace`` strands its temp file, and ``*/*.json`` globs never
        see it — without this sweep the tree silently outgrows any
        ``--cache-prune`` budget.
        """
        for path in self.root.glob("*/*.tmp*"):
            if path.parent.name != QUARANTINE_DIRNAME:
                yield path

    def _sweep_orphans(
        self, now: float | None = None, grace: float = ORPHAN_GRACE_SECONDS
    ) -> tuple[int, int]:
        """Delete stale temp files; returns ``(removed, freed_bytes)``.

        With ``now`` given, only temp files whose mtime is older than
        ``grace`` are removed (a concurrent ``put`` may legitimately own a
        fresh one); ``now=None`` removes unconditionally (``clear``).
        """
        removed = 0
        freed = 0
        for path in self._orphan_paths():
            try:
                stat = path.stat()
                if now is not None and now - stat.st_mtime < grace:
                    continue
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
            removed += 1
            freed += stat.st_size
        if removed:
            self._count("qbss_cache_prune_orphans_total", removed)
        return removed, freed

    def total_bytes(self) -> int:
        return sum(size for _, _, size in self.entries())

    def prune(
        self,
        max_age_days: float | None = None,
        max_bytes: int | None = None,
        now: float | None = None,
    ) -> PruneStats:
        """Evict entries by age, then oldest-first down to a size budget.

        Two independent criteria, both optional: entries whose mtime is
        older than ``max_age_days`` are always removed; if the survivors
        still exceed ``max_bytes``, the oldest are removed until the tree
        fits.  Eviction order is strictly oldest-mtime-first (path as a
        deterministic tie-break), so a long replay campaign keeps its
        hottest (most recently written) shards.  ``now`` is injectable for
        tests.

        Every prune also sweeps orphaned ``.tmp*`` files left by writes
        that died mid-:meth:`put` (older than :data:`ORPHAN_GRACE_SECONDS`
        only, so live concurrent writes survive); they are invisible to
        :meth:`entries` and would otherwise accumulate forever, unbounded
        by any size budget.
        """
        now = time.time() if now is None else now
        entries = self.entries()
        scanned = len(entries)
        removed = 0
        freed = 0
        survivors: list[tuple[Path, float, int]] = []
        if max_age_days is not None:
            cutoff = now - max_age_days * 86400.0
            for path, mtime, size in entries:
                if mtime < cutoff:
                    try:
                        path.unlink()
                        removed += 1
                        freed += size
                    except OSError:  # pragma: no cover - concurrent cleanup
                        pass
                else:
                    survivors.append((path, mtime, size))
        else:
            survivors = entries
        if max_bytes is not None:
            total = sum(size for _, _, size in survivors)
            for path, _mtime, size in survivors:
                if total <= max_bytes:
                    break
                try:
                    path.unlink()
                    removed += 1
                    freed += size
                    total -= size
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
        orphans, orphan_bytes = self._sweep_orphans(now=now)
        if removed:
            self._count("qbss_cache_prune_removed_total", removed)
        if freed or orphan_bytes:
            self._count("qbss_cache_prune_freed_bytes_total", freed + orphan_bytes)
        return PruneStats(
            scanned=scanned,
            removed=removed,
            kept=scanned - removed,
            freed_bytes=freed + orphan_bytes,
            orphans_removed=orphans,
        )

    def clear(self) -> int:
        """Delete every entry (orphaned temp files included); returns the
        number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        removed += self._sweep_orphans(now=None)[0]
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self._entry_paths())


@dataclass(frozen=True)
class PruneStats:
    """Outcome of one :meth:`ResultCache.prune` pass.

    ``orphans_removed`` counts swept ``.tmp*`` leftovers from interrupted
    writes — they are not cache entries, so they appear in neither
    ``scanned`` nor ``removed``, but their bytes are part of
    ``freed_bytes``.
    """

    scanned: int
    removed: int
    kept: int
    freed_bytes: int
    orphans_removed: int = 0


_SIZE_UNITS = {
    "b": 1,
    "kb": 10**3,
    "mb": 10**6,
    "gb": 10**9,
}


def parse_prune_spec(spec: str) -> tuple[float | None, int | None]:
    """Parse a ``--cache-prune`` spec into ``(max_age_days, max_bytes)``.

    The spec is one or two comma-separated terms: an age like ``30d`` /
    ``12h`` and/or a size budget like ``500mb`` / ``2gb`` / ``1048576``
    (bare numbers are bytes).  Examples: ``"30d"``, ``"500mb"``,
    ``"7d,1gb"``.
    """
    max_age_days: float | None = None
    max_bytes: int | None = None
    for term in spec.split(","):
        term = term.strip().lower()
        if not term:
            continue
        m = re.fullmatch(r"(\d+(?:\.\d+)?)(d|days?|h|hours?)", term)
        if m:
            value = float(m.group(1))
            days = value / 24.0 if m.group(2).startswith("h") else value
            if max_age_days is not None:
                raise ValueError(f"duplicate age term in prune spec {spec!r}")
            max_age_days = days
            continue
        m = re.fullmatch(r"(\d+(?:\.\d+)?)(b|kb|mb|gb)?", term)
        if m:
            unit = _SIZE_UNITS[m.group(2) or "b"]
            if max_bytes is not None:
                raise ValueError(f"duplicate size term in prune spec {spec!r}")
            max_bytes = int(float(m.group(1)) * unit)
            continue
        raise ValueError(
            f"cannot parse prune term {term!r} "
            "(expected an age like '30d'/'12h' or a size like '500mb')"
        )
    if max_age_days is None and max_bytes is None:
        raise ValueError(f"empty prune spec {spec!r}")
    return max_age_days, max_bytes
