"""Fault-injection, retry and failure primitives of the hardened engine.

Everything the execution layer needs to *degrade gracefully* lives here:

* :class:`RetryPolicy` — seeded-deterministic exponential backoff applied
  to **transient** failures (worker death, cache I/O trouble, anything
  raising a :class:`TransientError`), never to deterministic algorithm
  exceptions.
* :class:`FailureInfo` — the structured record of one task that could not
  be completed: kind, attempts used, wall time per attempt, traceback.
  Surfaced in :meth:`repro.engine.EngineResult.summary`, the CLI footers
  and replay shard verdicts.
* :class:`FaultPlan` / :class:`FaultSpec` — a *deterministic*
  fault-injection harness.  A plan pins faults to exact ``(task,
  attempt)`` coordinates and travels to pool workers through the
  ``QBSS_FAULT_PLAN`` environment variable (raw JSON, or ``@/path`` to a
  JSON file), which every worker body reads before running its task.
  Tests use it to force each recovery path — worker crashes
  (``BrokenProcessPool``), hangs (deadline timeouts), corrupted cache
  entries (quarantine) and plain exceptions — at reproducible spots.

Nothing here imports the experiment registry or the trace layer; it is
shared verbatim by :mod:`repro.engine.runner` and
:mod:`repro.traces.replay`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable
from typing import Any

#: Environment variable holding the active fault plan (JSON, or ``@path``).
FAULT_PLAN_ENV = "QBSS_FAULT_PLAN"

FAULT_PLAN_VERSION = 1

#: Exit status an injected ``crash`` uses to kill its worker process.
CRASH_EXIT_CODE = 87

FAULT_KINDS = ("crash", "hang", "corrupt-cache", "raise", "kill", "torn-write")


class TransientError(RuntimeError):
    """Base class for failures the :class:`RetryPolicy` may retry.

    Deterministic algorithm exceptions must *not* derive from this —
    retrying them would re-run a computation guaranteed to fail again.
    """


class WorkerCrashError(TransientError):
    """A worker process died (or an injected crash was simulated in-process)."""


class InjectedFault(RuntimeError):
    """A deterministic fault injected by a :class:`FaultPlan` (not retried)."""


class InjectedTransientFault(TransientError):
    """A transient fault injected by a :class:`FaultPlan` (retried)."""


# -- retry policy -------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded-deterministic exponential backoff for transient failures.

    ``max_attempts`` counts *total* attempts (1 = never retry).  The delay
    before attempt ``n + 1`` is ``min(backoff_cap, backoff_base * 2**(n-1))``
    scaled by a jitter factor in ``[0.5, 1.5)`` drawn from an RNG seeded by
    ``(jitter_seed, task, n)`` — the same task retries with the same delays
    on every run, so fault-injection tests stay reproducible while
    unrelated tasks still de-synchronise.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")

    def delay(self, task: str, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based) of ``task``."""
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))
        if base <= 0.0:
            return 0.0
        rng = random.Random(f"{self.jitter_seed}:{task}:{attempt}")
        return base * (0.5 + rng.random())


# -- structured failure records -----------------------------------------------------


@dataclass
class FailureInfo:
    """One task that the hardened layer could not complete.

    ``kind`` is ``"error"`` (deterministic exception), ``"crash"`` (worker
    death, attempts exhausted), ``"timeout"`` (deadline exceeded) or
    ``"cache"`` (unrecoverable cache I/O).  ``wall_times`` holds the wall
    time of each attempt, in order.
    """

    task: str
    kind: str
    attempts: int
    wall_times: list[float] = field(default_factory=list)
    traceback: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "task": self.task,
            "kind": self.kind,
            "attempts": self.attempts,
            "wall_times": list(self.wall_times),
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> FailureInfo:
        return cls(
            task=str(data["task"]),
            kind=str(data["kind"]),
            attempts=int(data["attempts"]),
            wall_times=[float(w) for w in data.get("wall_times", [])],
            traceback=data.get("traceback"),
        )

    def summary_line(self) -> str:
        """One human line for CLI footers: task, kind, attempts, total wall."""
        total = sum(self.wall_times)
        head = ""
        if self.traceback:
            tail = self.traceback.strip().splitlines()
            head = f" — {tail[-1]}" if tail else ""
        return (
            f"{self.task}: {self.kind} after {self.attempts} attempt(s), "
            f"{total:.3f}s{head}"
        )


# -- deterministic fault injection --------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault at coordinates ``(task, attempt)``.

    ``attempt`` is 1-based; ``0`` means *every* attempt (a deterministic,
    non-recoverable fault).  ``kind``:

    ``crash``
        ``os._exit`` inside a pool worker (→ ``BrokenProcessPool`` in the
        parent); simulated as a :class:`WorkerCrashError` when running
        in-process, where a real exit would kill the whole run.
    ``hang``
        sleep ``seconds`` before proceeding normally — with a task
        deadline set, the parent times the task out.
    ``raise``
        raise :class:`InjectedTransientFault` when ``transient`` else
        :class:`InjectedFault`.
    ``corrupt-cache``
        no-op in the worker; the parent truncates the cache entry it just
        wrote for these coordinates, so the *next* run exercises the
        quarantine path.
    ``kill``
        real ``SIGKILL`` to the current process — uncatchable, like
        ``kill -9``.  In a pool worker the parent sees
        ``BrokenProcessPool`` (as with ``crash``, but without the orderly
        ``os._exit``); injected in-process it kills the whole run or
        daemon, which is exactly what the crash-recovery harness uses to
        take a live ``qbss-serve`` down mid-batch.
    ``torn-write``
        no-op in the worker; the parent applies
        :func:`torn_write_entry` to the cache/journal file it just wrote
        for these coordinates — a raw mid-stream truncation simulating a
        write interrupted by power loss, so the next reader exercises
        the quarantine / torn-tail recovery path.
    """

    task: str
    kind: str
    attempt: int = 1
    transient: bool = False
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of: {', '.join(FAULT_KINDS)})"
            )
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")

    def matches(self, task: str, attempt: int) -> bool:
        return self.task == task and self.attempt in (0, attempt)

    def to_dict(self) -> dict[str, Any]:
        return {
            "task": self.task,
            "kind": self.kind,
            "attempt": self.attempt,
            "transient": self.transient,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> FaultSpec:
        return cls(
            task=str(data["task"]),
            kind=str(data["kind"]),
            attempt=int(data.get("attempt", 1)),
            transient=bool(data.get("transient", False)),
            seconds=float(data.get("seconds", 30.0)),
        )


def _in_pool_worker() -> bool:
    """True inside a spawned/forked pool worker (where os._exit is safe)."""
    return multiprocessing.parent_process() is not None


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of :class:`FaultSpec` injections.

    Travels to pool workers via :data:`FAULT_PLAN_ENV`; worker bodies call
    :func:`active_fault_plan` + :meth:`inject` before running each task.
    The first spec matching ``(task, attempt)`` wins.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        object.__setattr__(self, "specs", tuple(specs))

    def lookup(self, task: str, attempt: int) -> FaultSpec | None:
        for spec in self.specs:
            if spec.matches(task, attempt):
                return spec
        return None

    def inject(self, task: str, attempt: int) -> None:
        """Perform whatever fault (if any) this plan pins to ``(task, attempt)``.

        Called from worker bodies; see :class:`FaultSpec` for semantics.
        """
        spec = self.lookup(task, attempt)
        if spec is None:
            return
        if spec.kind == "hang":
            time.sleep(spec.seconds)
            return
        if spec.kind == "crash":
            if _in_pool_worker():
                os._exit(CRASH_EXIT_CODE)
            raise WorkerCrashError(
                f"injected crash for task {task!r} attempt {attempt} "
                "(simulated in-process)"
            )
        if spec.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if spec.kind == "raise":
            exc = InjectedTransientFault if spec.transient else InjectedFault
            raise exc(
                f"injected {'transient ' if spec.transient else ''}fault for "
                f"task {task!r} attempt {attempt}"
            )
        # corrupt-cache / torn-write are applied by the parent after the write.

    def wants_corrupt_cache(self, task: str, attempt: int) -> bool:
        spec = self.lookup(task, attempt)
        return spec is not None and spec.kind == "corrupt-cache"

    def wants_torn_write(self, task: str, attempt: int) -> bool:
        spec = self.lookup(task, attempt)
        return spec is not None and spec.kind == "torn-write"

    # -- serialization / the env hook ----------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": FAULT_PLAN_VERSION,
                "faults": [s.to_dict() for s in self.specs],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> FaultPlan:
        data = json.loads(text)
        if not isinstance(data, dict) or "faults" not in data:
            raise ValueError("fault plan must be a JSON object with a 'faults' list")
        if data.get("version") != FAULT_PLAN_VERSION:
            raise ValueError(
                f"unsupported fault-plan version {data.get('version')!r}"
            )
        return cls(FaultSpec.from_dict(d) for d in data["faults"])

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None) -> FaultPlan | None:
        """The plan installed in ``QBSS_FAULT_PLAN``, parsed and memoized."""
        raw = (environ or os.environ).get(FAULT_PLAN_ENV)
        if not raw:
            return None
        return _parse_env_plan(raw)


_ENV_PLAN_MEMO: dict[str, FaultPlan] = {}


def _parse_env_plan(raw: str) -> FaultPlan:
    # Deterministic parse memo: same raw plan string always yields the
    # same plan, so the mutation below can never change worker output.
    plan = _ENV_PLAN_MEMO.get(raw)
    if plan is None:
        text = Path(raw[1:]).read_text() if raw.startswith("@") else raw
        plan = FaultPlan.from_json(text)
        if len(_ENV_PLAN_MEMO) > 32:  # bound the memo during long fuzz runs
            _ENV_PLAN_MEMO.clear()
        _ENV_PLAN_MEMO[raw] = plan  # qbss-lint: disable=QL003
    return plan


def active_fault_plan() -> FaultPlan | None:
    """What worker bodies call: the env-installed plan, or ``None``."""
    return FaultPlan.from_env()


class installed_fault_plan:
    """Context manager installing ``plan`` into :data:`FAULT_PLAN_ENV`.

    Pool workers inherit the parent environment at spawn time, so wrapping
    pool creation in this context is all the plumbing a programmatic
    ``fault_plan=`` argument needs.  ``None`` is a no-op (an externally
    exported ``QBSS_FAULT_PLAN`` stays in effect).
    """

    def __init__(self, plan: FaultPlan | None) -> None:
        self.plan = plan
        self._old: str | None = None

    def __enter__(self) -> FaultPlan | None:
        if self.plan is not None:
            self._old = os.environ.get(FAULT_PLAN_ENV)
            os.environ[FAULT_PLAN_ENV] = self.plan.to_json()
        return self.plan

    def __exit__(self, *exc_info: object) -> None:
        if self.plan is not None:
            if self._old is None:
                os.environ.pop(FAULT_PLAN_ENV, None)
            else:
                os.environ[FAULT_PLAN_ENV] = self._old


def corrupt_cache_entry(path: str | Path) -> None:
    """Truncate a just-written cache file to garbage (the ``corrupt-cache``
    fault).  Keeps a non-empty, non-JSON prefix so the quarantine path — not
    the missing-file path — is what the next reader exercises."""
    path = Path(path)
    try:
        raw = path.read_bytes()
        path.write_bytes(raw[: max(1, len(raw) // 3)].rstrip(b"}\n") or b"{")
    except OSError:  # pragma: no cover - fault injection best-effort
        pass


def torn_write_entry(path: str | Path) -> None:
    """Cut a just-written file mid-stream (the ``torn-write`` fault).

    Unlike :func:`corrupt_cache_entry` this is a *raw* byte truncation —
    no rstrip, no guaranteed-garbage prefix — modelling exactly what a
    crash between ``write`` and ``fsync`` can leave behind: a prefix of
    the intended bytes, possibly cut mid-token or mid-codepoint.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
    except OSError:  # pragma: no cover - fault injection best-effort
        pass
