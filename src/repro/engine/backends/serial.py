"""The in-process serial backend: no capacity, pure inline execution."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import Future
from typing import Any

from .base import Backend


class SerialBackend(Backend):
    """Run every task inline on the driver thread.

    ``inline = True`` routes the driver straight into its serial loop:
    attempts run one at a time, retry backoff blocks between attempts of
    the same task, and ``task_timeout`` is not enforced (a running task
    cannot be preempted in-process).  This is byte-identical to the
    legacy ``jobs=1`` path — the spec exists so callers can *force*
    serial semantics regardless of the session's ``jobs``.
    """

    name = "serial"
    inline = True

    def submit(
        self,
        fn: Callable[..., dict[str, Any]],
        args: Sequence[Any],
        task: Any | None = None,
    ) -> Future:
        raise RuntimeError(
            "SerialBackend is inline; the driver must not submit to it"
        )

    def result(self, handle: Future) -> dict[str, Any]:
        raise RuntimeError(
            "SerialBackend is inline; the driver must not collect from it"
        )

    def cancel(self, handle: Future) -> bool:
        raise RuntimeError(
            "SerialBackend is inline; the driver must not cancel on it"
        )
