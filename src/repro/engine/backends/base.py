"""The :class:`Backend` protocol: where hardened tasks actually run.

A backend owns execution *capacity* (worker processes, sockets, nothing
at all); the hardened driver in :mod:`repro.engine.runner` owns execution
*policy* (deadlines, retries, rebuild-then-degrade).  The split contract:

* :meth:`Backend.submit` dispatches one attempt and returns a
  :class:`concurrent.futures.Future` handle resolving to the worker's
  outcome dict.  Handles being real futures is part of the protocol —
  the driver calls ``handle.done()`` and waits on them with
  :func:`concurrent.futures.wait`.
* :meth:`Backend.result` collects a completed handle.  Transport-level
  loss of the whole backend surfaces as :class:`BackendBroken` (from
  ``submit`` or ``result``); the driver maps it onto the existing
  rebuild-once-then-degrade escalation.
* :meth:`Backend.cancel` tries to stop a scheduled attempt.  ``False``
  means the task is already running and cannot be preempted: its worker
  stays pinned and :meth:`Backend.free_slots` shrinks accordingly until
  the backend is killed or the worker comes back.
* :meth:`Backend.drain` blocks until at least one handle completes
  (``FIRST_COMPLETED`` semantics, bounded by ``timeout``).
* :meth:`Backend.release` ends one batch (the backend stays reusable);
  :meth:`Backend.close` tears capacity down.  ``kill=True`` on either
  means "do not wait for hung workers".

Implementations must stay deterministic under the QL001 lint contract:
no wall-clock reads, no unseeded randomness — scheduling jitter never
reaches report payloads.
"""

from __future__ import annotations

from collections.abc import Callable, Collection, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, wait
from typing import Any

#: Valid backend kinds of a ``--backend`` spec string.
BACKEND_KINDS = ("serial", "pool", "remote")


class BackendBroken(RuntimeError):
    """The backend lost its execution capacity mid-batch.

    The driver treats this exactly like a :class:`BrokenProcessPool`
    from the legacy pool: every in-flight task counts a crashed attempt,
    the backend is closed and reopened once, and a second break degrades
    the run to in-process serial execution.
    """


class Backend:
    """Base class of the execution backends (see module docstring)."""

    #: Human name, used in error messages and ``repr``.
    name: str = "backend"

    #: Inline backends run tasks on the driver thread (serial semantics:
    #: blocking retries, no deadline preemption).  The driver never calls
    #: ``submit``/``drain`` on them.
    inline: bool = False

    #: Bounded backends cannot queue work beyond their workers: the
    #: driver caps submissions at :meth:`free_slots` even without a task
    #: deadline (the local pool only does so when a deadline is set,
    #: because executor-queue wait would count against it).
    bounded: bool = False

    def ensure_open(self) -> None:
        """(Re)acquire capacity before a batch or after :meth:`close`.

        Raises :class:`BackendBroken` when no capacity is reachable.
        """

    def submit(
        self,
        fn: Callable[..., dict[str, Any]],
        args: Sequence[Any],
        task: Any | None = None,
    ) -> Future:
        """Dispatch one attempt of ``fn(*args)``; returns its handle.

        ``task`` is the driver's :class:`~repro.engine.runner.HardenedTask`
        — backends may read advisory fields (``task_key``, ``publish``)
        but must not mutate it.
        """
        raise NotImplementedError

    def result(self, handle: Future) -> dict[str, Any]:
        """The outcome dict of a completed handle.

        Raises :class:`BackendBroken` when the completion reports the
        backend itself died rather than the task failing.
        """
        raise NotImplementedError

    def cancel(self, handle: Future) -> bool:
        """Try to stop an attempt; ``False`` == running and now pinned."""
        raise NotImplementedError

    def drain(
        self, handles: Collection[Future], timeout: float | None
    ) -> set[Future]:
        """Handles completed after waiting at most ``timeout`` seconds."""
        done, _pending = wait(
            set(handles), timeout=timeout, return_when=FIRST_COMPLETED
        )
        return done

    def free_slots(self) -> int | None:
        """How many attempts may run concurrently right now.

        ``None`` means unbounded (the driver falls back to its own
        ``max_inflight`` limit alone).  Pinned (hung) workers do not
        count.
        """
        return None

    def release(self, kill: bool = False) -> None:
        """End one batch; the backend must accept a later ``ensure_open``."""

    def close(self, kill: bool = False) -> None:
        """Tear capacity down (idempotent); ``ensure_open`` may reopen."""

    def __enter__(self) -> Backend:
        self.ensure_open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


def parse_backend_spec(spec: str) -> tuple[str, tuple[str, ...]]:
    """Validate a ``--backend`` spec into ``(kind, worker entries)``.

    ``serial`` and ``pool`` take no arguments.  ``remote:`` is followed
    by a comma-separated worker list where each entry is ``HOST:PORT``
    or ``@FILE`` (a ``qbss-worker --port-file`` to read at connect
    time).  Raises :class:`ValueError` on anything else — the CLIs turn
    that into an argparse error.
    """
    kind, sep, rest = spec.partition(":")
    kind = kind.strip().lower()
    if kind not in BACKEND_KINDS:
        raise ValueError(
            f"unknown backend {kind!r} (one of: {', '.join(BACKEND_KINDS)})"
        )
    if kind in ("serial", "pool"):
        if sep:
            raise ValueError(f"backend {kind!r} takes no arguments, got {spec!r}")
        return kind, ()
    entries = tuple(e.strip() for e in rest.split(",") if e.strip())
    if not entries:
        raise ValueError(
            "remote backend needs at least one worker: "
            "remote:HOST:PORT[,HOST:PORT...] (or @FILE port-file entries)"
        )
    for entry in entries:
        if not entry.startswith("@") and ":" not in entry:
            raise ValueError(
                f"remote worker entry {entry!r} must be HOST:PORT or @FILE"
            )
    return kind, entries


def create_backend(spec: str | Backend | None) -> Backend | None:
    """Instantiate the backend a spec string names.

    ``None`` and ``"pool"`` both return ``None``: the driver's built-in
    default, which is the hardened local pool for ``jobs > 1`` and
    inline serial execution otherwise — exactly the pre-protocol
    behavior, sized per call.  A :class:`Backend` instance passes
    through untouched.
    """
    if spec is None or isinstance(spec, Backend):
        return spec
    kind, entries = parse_backend_spec(spec)
    if kind == "pool":
        return None
    if kind == "serial":
        from .serial import SerialBackend

        return SerialBackend()
    from .remote import RemoteBackend

    return RemoteBackend(entries)
