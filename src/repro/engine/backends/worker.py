"""``qbss-worker``: a long-lived TCP execution worker.

One worker process serves one driver connection at a time (the remote
backend keeps exactly one task in flight per worker, so there is nothing
to parallelise here).  Per task it:

1. resolves the requested worker function (restricted to module-level
   callables inside the :mod:`repro` package — a frame cannot name
   arbitrary code to run);
2. installs the forwarded ``QBSS_FAULT_PLAN`` value for the duration of
   the call, so the deterministic fault harness drives remote workers
   exactly like local pool workers;
3. runs the function — worker bodies such as
   :func:`repro.engine.runner._execute` capture their own exceptions
   into the outcome dict, and this loop catches anything that still
   escapes;
4. on success, *publishes* the result into this worker's
   content-addressed :class:`~repro.engine.cache.ResultCache` (when the
   task carries a publish spec and ``--cache-dir`` points at a store),
   **before** replying.  With workers sharing a cache directory the
   cache becomes the coordination point: if this worker dies after
   publishing but before replying, the retrying driver finds the digest
   already computed.

Startup announces the bound address through ``--port-file`` (written
atomically: temp file + fsync + rename), so ``--bind 127.0.0.1:0`` plus
``remote:@FILE`` driver entries need no port arithmetic.

A real ``kill`` fault (or SIGKILL from outside) terminates the process
mid-task; the driver sees the connection drop and books a transient
crash attempt — that is the failure mode this backend is built around.
"""

from __future__ import annotations

import argparse
import os
import pickle
import signal
import socket
import sys
import time
import traceback
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from ..cache import ResultCache
from ..faults import FAULT_PLAN_ENV
from .remote import WIRE_VERSION, recv_frame, send_frame

#: Default bind address when neither ``--bind`` nor the env hook is set.
DEFAULT_BIND = "127.0.0.1:0"

#: Environment fallback for ``--bind`` (HOST:PORT; port 0 = ephemeral).
BIND_ENV = "QBSS_WORKER_BIND"


def _log(message: str) -> None:
    # stderr only, no wall-clock timestamps: worker logs are collected as
    # CI artifacts and must stay deterministic-friendly (QL001).
    print(f"qbss-worker[{os.getpid()}]: {message}", file=sys.stderr, flush=True)


def parse_bind(value: str) -> tuple[str, int]:
    """``HOST:PORT`` → address tuple (port 0 asks for an ephemeral port)."""
    host, sep, port_text = value.strip().rpartition(":")
    if not sep or not host:
        raise ValueError(f"--bind expects HOST:PORT, got {value!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in --bind {value!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"--bind port must be in [0, 65535], got {port}")
    return host, port


def write_port_file(path: Path, bound: tuple[str, int]) -> None:
    """Atomically publish the bound address (readers never see a torn file)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(f"{bound[0]}:{bound[1]}\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def resolve_task_fn(spec: str) -> Callable[..., Any]:
    """``module:qualname`` → the callable, restricted to the repro package.

    Refuses anything outside :mod:`repro` and any dunder path component:
    a task frame selects among this package's module-level worker bodies,
    it does not get an arbitrary-import gadget.
    """
    module_name, sep, qualname = spec.partition(":")
    if not sep or not module_name or not qualname:
        raise ValueError(f"task fn must be 'module:qualname', got {spec!r}")
    if module_name != "repro" and not module_name.startswith("repro."):
        raise ValueError(f"task fn must live in the repro package, got {spec!r}")
    parts = qualname.split(".")
    if any(not p or p.startswith("__") for p in parts):
        raise ValueError(f"refusing dunder path in task fn {spec!r}")
    import importlib

    obj: Any = importlib.import_module(module_name)
    for part in parts:
        obj = getattr(obj, part)
    if not callable(obj):
        raise ValueError(f"task fn {spec!r} is not callable")
    return obj  # type: ignore[no-any-return]


@contextmanager
def _forwarded_fault_plan(raw: str | None) -> Iterator[None]:
    """Install the driver's ``QBSS_FAULT_PLAN`` for one task, then restore."""
    previous = os.environ.get(FAULT_PLAN_ENV)
    if raw is None:
        os.environ.pop(FAULT_PLAN_ENV, None)
    else:
        os.environ[FAULT_PLAN_ENV] = raw
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = previous


def _publish_outcome(
    store: ResultCache, publish: dict[str, Any], outcome: dict[str, Any]
) -> None:
    """Best-effort cache publication of one successful outcome."""
    payload = outcome.get("payload")
    if not isinstance(payload, dict):
        return
    report_doc = dict(payload, status="ok") if publish.get("wrap_status") else payload
    try:
        store.put(
            str(publish["key"]),
            str(publish.get("experiment", "task")),
            dict(publish.get("params") or {}),
            report_doc,
            float(outcome.get("wall", 0.0)),
            publish.get("package_version"),
        )
    except (OSError, KeyError, TypeError, ValueError) as exc:
        # The reply still carries the payload; the driver's own cache
        # write (or the next recompute) covers for a failed publication.
        _log(f"cache publish failed for {publish.get('key')!r}: {exc}")


def _run_task(frame: dict[str, Any], store: ResultCache | None) -> dict[str, Any]:
    """Execute one task frame, returning the outcome dict to send back."""
    start = time.perf_counter()
    try:
        fn = resolve_task_fn(str(frame["fn"]))
        args = tuple(frame.get("args") or ())
        raw_plan = frame.get("fault_plan")
        with _forwarded_fault_plan(raw_plan if isinstance(raw_plan, str) else None):
            outcome = fn(*args)
        if not isinstance(outcome, dict) or "ok" not in outcome:
            raise TypeError(
                f"worker fn returned {type(outcome).__name__}, expected an outcome dict"
            )
    except Exception:
        # Worker bodies catch their own errors; this guards the frame
        # plumbing itself (bad fn spec, unpicklable args, contract drift).
        return {
            "ok": False,
            "error": traceback.format_exc(limit=8),
            "transient": False,
            "kind": "error",
            "wall": time.perf_counter() - start,
        }
    publish = frame.get("publish")
    if outcome.get("ok") and isinstance(publish, dict) and store is not None:
        _publish_outcome(store, publish, outcome)
    return outcome


def _serve_connection(
    conn: socket.socket, peer: str, store: ResultCache | None
) -> bool:
    """Serve one driver connection; ``True`` means shut the worker down."""
    reader = conn.makefile("rb")
    try:
        send_frame(
            conn,
            {
                "kind": "hello",
                "wire_version": WIRE_VERSION,
                "pid": os.getpid(),
            },
        )
        while True:
            try:
                frame = recv_frame(reader)
            except (ConnectionError, ValueError, pickle.UnpicklingError, EOFError):
                _log(f"torn frame from {peer}; dropping connection")
                return False
            if frame is None:
                return False  # driver went away; wait for the next one
            kind = frame.get("kind")
            if kind == "task":
                outcome = _run_task(frame, store)
                send_frame(
                    conn,
                    {"kind": "result", "id": frame.get("id"), "outcome": outcome},
                )
            elif kind == "ping":
                send_frame(conn, {"kind": "pong"})
            elif kind == "shutdown":
                send_frame(conn, {"kind": "bye"})
                return True
            else:
                _log(f"ignoring unknown frame kind {kind!r} from {peer}")
    except OSError:
        return False  # reply failed: driver is gone
    finally:
        try:
            reader.close()
            conn.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qbss-worker",
        description=(
            "Long-lived TCP execution worker for the qbss remote backend "
            "(see docs/backends.md)."
        ),
    )
    parser.add_argument(
        "--bind",
        default=None,
        metavar="HOST:PORT",
        help=(
            "address to listen on (port 0 = ephemeral; default: "
            f"${BIND_ENV} or {DEFAULT_BIND})"
        ),
    )
    parser.add_argument(
        "--port-file",
        type=Path,
        default=None,
        metavar="PATH",
        help="atomically write the bound HOST:PORT here once listening "
        "(drivers point remote:@PATH at it)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache to publish successful outcomes into "
        "(share one directory across workers to make the cache the "
        "coordination point)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="never publish outcomes to a cache, even with --cache-dir",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    bind_text = args.bind or os.environ.get(BIND_ENV) or DEFAULT_BIND
    try:
        address = parse_bind(bind_text)
    except ValueError as exc:
        build_parser().error(str(exc))
    store: ResultCache | None = None
    if args.cache_dir is not None and not args.no_cache:
        store = ResultCache(args.cache_dir)

    def _on_sigterm(signum: int, frame: Any) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _on_sigterm)

    server = socket.create_server(address, backlog=4)
    bound_host, bound_port = server.getsockname()[:2]
    if args.port_file is not None:
        write_port_file(args.port_file, (bound_host, bound_port))
    _log(f"listening on {bound_host}:{bound_port} (wire v{WIRE_VERSION})")
    # SIGTERM raises SystemExit(0), which propagates (QL004) and still
    # exits 0; Ctrl-C propagates as KeyboardInterrupt.
    try:
        while True:
            # Untimed accept() is deliberate: PEP 475 makes it
            # signal-interruptible, and SIGTERM above raises SystemExit.
            conn, peer_addr = server.accept()  # qbss-lint: disable=QL009
            peer = f"{peer_addr[0]}:{peer_addr[1]}"
            _log(f"driver connected from {peer}")
            if _serve_connection(conn, peer, store):
                _log("shutdown requested; exiting")
                return 0
            _log(f"driver at {peer} disconnected")
    finally:
        server.close()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
