"""The hardened local process pool, as a :class:`Backend`.

This is the execution strategy :func:`~repro.engine.runner.execute_hardened`
always had, extracted behind the protocol: a
:class:`concurrent.futures.ProcessPoolExecutor` of ``jobs`` workers,
rebuilt by the driver when it breaks or when every worker is pinned by a
timed-out task.

The executor class is looked up through the :mod:`repro.engine.runner`
module attribute **at construction time** — the fault-injection suite
monkeypatches ``runner.ProcessPoolExecutor`` with scripted pools, and
that seam must keep working no matter which layer builds the pool.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any

from .base import Backend, BackendBroken

if TYPE_CHECKING:
    from concurrent.futures import ProcessPoolExecutor


class PoolBackend(Backend):
    """``jobs`` local worker processes behind the legacy pool semantics."""

    name = "pool"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"pool backend needs jobs >= 1, got {jobs}")
        self.jobs = jobs
        self._pool: ProcessPoolExecutor | None = None
        #: Timed-out tasks still pinning a worker of the *current* pool.
        self._hung = 0

    def ensure_open(self) -> None:
        if self._pool is None:
            from repro.engine import runner as _runner

            # Construct through the runner module attribute: tests
            # monkeypatch runner.ProcessPoolExecutor to script pool
            # behavior, and pool construction never raises (workers
            # spawn lazily), so no BackendBroken mapping is needed here.
            self._pool = _runner.ProcessPoolExecutor(max_workers=self.jobs)
            self._hung = 0

    def submit(
        self,
        fn: Callable[..., dict[str, Any]],
        args: Sequence[Any],
        task: Any | None = None,
    ) -> Future:
        if self._pool is None:
            raise BackendBroken("pool backend is closed")
        try:
            return self._pool.submit(fn, *args)
        except BrokenProcessPool as exc:
            raise BackendBroken(str(exc)) from exc

    def result(self, handle: Future) -> dict[str, Any]:
        try:
            outcome: dict[str, Any] = handle.result()
        except BrokenProcessPool as exc:
            raise BackendBroken(str(exc)) from exc
        return outcome

    def cancel(self, handle: Future) -> bool:
        if handle.cancel() or handle.done():
            return True
        # cancel() cannot stop a running future: its worker stays pinned
        # until this pool is replaced, and capacity shrinks meanwhile.
        self._hung += 1
        return False

    def free_slots(self) -> int:
        return max(0, self.jobs - self._hung)

    def release(self, kill: bool = False) -> None:
        # Pools are per-batch: the legacy driver shut its pool down after
        # every run (killing it when a timeout pinned a worker), and warm
        # sessions keep the *cache* warm, not the workers.
        self.close(kill=kill)

    def close(self, kill: bool = False) -> None:
        if self._pool is not None:
            from repro.engine import runner as _runner

            _runner._shutdown_pool(self._pool, kill=kill)
            self._pool = None
        self._hung = 0
