"""Pluggable execution backends for the hardened driver.

:func:`repro.engine.runner.execute_hardened` used to know exactly one
way to run a task: a local :class:`concurrent.futures.ProcessPoolExecutor`
with serial degradation.  This package extracts that knowledge behind the
small :class:`Backend` protocol — ``submit`` / ``cancel`` / ``drain`` /
``close`` — so the same driver loop (deadlines, seeded retries,
broken-backend rebuilds, degradation) runs against any of three
implementations:

* :class:`SerialBackend` — in-process, inline execution (``serial``);
* :class:`PoolBackend` — the existing hardened local process pool
  (``pool``, the default; behavior-identical to the pre-protocol driver);
* :class:`RemoteBackend` — a stdlib-socket TCP work queue fanning tasks
  out to ``qbss-worker`` processes (``remote:HOST:PORT[,HOST:PORT...]``),
  where workers publish results into the content-addressed
  :class:`~repro.engine.cache.ResultCache` by digest so the cache is the
  coordination point and a lost worker is just a transient retry.

Backend selection threads through
:class:`~repro.engine.session.ExecutionSession` and the ``--backend``
flag of ``qbss-report``, ``qbss-replay`` and ``qbss-serve``; see
``docs/backends.md`` for the protocol, the wire format and the failure
semantics.
"""

from .base import (
    Backend,
    BackendBroken,
    create_backend,
    parse_backend_spec,
)
from .local import PoolBackend
from .remote import RemoteBackend, resolve_worker_address
from .serial import SerialBackend

__all__ = [
    "Backend",
    "BackendBroken",
    "PoolBackend",
    "RemoteBackend",
    "SerialBackend",
    "create_backend",
    "parse_backend_spec",
    "resolve_worker_address",
]
