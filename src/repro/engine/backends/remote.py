"""The TCP work-queue backend: a stdlib-socket driver for ``qbss-worker``.

One driver fans tasks out to a fleet of long-lived ``qbss-worker``
processes (see :mod:`repro.engine.backends.worker`), one task in flight
per worker.  The protocol is deliberately minimal:

**Wire format** — length-prefixed pickle frames: an 8-byte big-endian
unsigned length (``!Q``) followed by that many bytes of pickled dict.
Pickle (protocol 4) is used because task arguments are exactly the
tuples the local pool would pickle — floats, tuples and nested dicts
round-trip identically, which the byte-identity contract requires.
Frames larger than :data:`MAX_FRAME_BYTES` are refused.

**Handshake** — on connect the worker sends a ``hello`` frame carrying
:data:`WIRE_VERSION`; a missing, slow or mismatched hello fails the
connection (a worker mid-hang accepts TCP via the listen backlog but
cannot greet, so the timeout is what detects it).

**Frames** — driver → worker: ``task`` (id, worker function as
``module:qualname``, pickled args, the forwarded ``QBSS_FAULT_PLAN``
value, an optional cache-publish spec) and ``shutdown``; worker →
driver: ``hello``, ``result`` (id + outcome dict), ``bye``.

**Failure semantics** — a worker that dies mid-task (connection reset /
EOF) resolves that task's handle to a *transient crash outcome*, exactly
what a dead local pool worker produces, so the driver's seeded retry
resubmits it to a surviving worker.  A worker whose task was cancelled
(deadline timeout) stays **pinned**: no new work is sent until its stale
result arrives and is discarded.  When no worker is reachable at all,
``submit``/``ensure_open`` raise
:class:`~repro.engine.backends.base.BackendBroken` and the driver walks
its rebuild-once-then-degrade-to-serial escalation — a fleet outage
still yields a complete (degraded) run.

Workers publish successful results into the content-addressed
:class:`~repro.engine.cache.ResultCache` *before* replying when the task
carries a publish spec, so a shared cache directory (or replicated
store) makes the cache the coordination point: the driver — or the next
driver — only recomputes misses.
"""

from __future__ import annotations

import itertools
import os
import pickle
import socket
import struct
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import Future
from pathlib import Path
from typing import Any

from ...lint import lockwatch
from ..faults import FAULT_PLAN_ENV
from .base import Backend, BackendBroken

#: Version of the frame protocol; bumped on any incompatible change.
WIRE_VERSION = 1

#: Refuse frames beyond this size — a corrupt length prefix must not
#: trigger a gigantic allocation.
MAX_FRAME_BYTES = 1 << 30

#: Seconds to wait for a TCP connect plus the worker's hello frame.
DEFAULT_CONNECT_TIMEOUT = 10.0

_HEADER = struct.Struct("!Q")


def send_frame(sock: socket.socket, frame: dict[str, Any]) -> None:
    """Write one length-prefixed pickle frame."""
    blob = pickle.dumps(frame, protocol=4)
    if len(blob) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(blob)} bytes exceeds the wire limit")
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def recv_frame(reader: Any) -> dict[str, Any] | None:
    """Read one frame from a buffered binary reader.

    Returns ``None`` on clean EOF (no bytes at a frame boundary); raises
    :class:`ConnectionError` on a torn frame and :class:`ValueError` on
    an oversized or non-dict frame.
    """
    header = reader.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ConnectionError("connection closed mid-frame header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds the wire limit")
    blob = reader.read(length)
    if len(blob) < length:
        raise ConnectionError("connection closed mid-frame body")
    frame = pickle.loads(blob)
    if not isinstance(frame, dict):
        raise ValueError(f"expected a dict frame, got {type(frame).__name__}")
    return frame


def resolve_worker_address(entry: str) -> tuple[str, int]:
    """``HOST:PORT`` — or ``@FILE`` naming a ``qbss-worker`` port file —
    resolved to a connectable address."""
    text = entry.strip()
    if text.startswith("@"):
        try:
            text = Path(text[1:]).read_text().strip()
        except OSError as exc:
            raise ValueError(f"cannot read worker port file {entry[1:]!r}: {exc}") from exc
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker address must be HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in worker address {text!r}") from None
    if not 1 <= port <= 65535:
        raise ValueError(f"worker port must be in [1, 65535], got {port}")
    return host, port


def worker_fn_spec(fn: Callable[..., Any]) -> str:
    """The ``module:qualname`` name a worker resolves back to a callable."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ValueError(
            f"remote worker functions must be module-level callables, got {fn!r}"
        )
    return f"{module}:{qualname}"


class _WorkerLink:
    """One driver↔worker connection: socket, reader thread, bookkeeping.

    ``pending`` holds the single in-flight task (id, handle, start time);
    ``abandoned`` holds ids whose deadline expired — the link is *pinned*
    (no new work) until the worker's stale results for them drain.
    All mutable state is guarded by ``lock`` (driver thread vs reader
    thread).
    """

    __slots__ = (
        "address", "sock", "reader", "thread", "lock",
        "alive", "pinned", "pending", "abandoned",
    )

    def __init__(self, address: tuple[str, int]) -> None:
        self.address = address
        self.sock: socket.socket | None = None
        self.reader: Any = None
        self.thread: threading.Thread | None = None
        self.lock = lockwatch.new_lock("_WorkerLink.lock")
        self.alive = False
        self.pinned = False
        self.pending: tuple[int, Future, float] | None = None
        self.abandoned: set[int] = set()

    @property
    def label(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"


def _link_crash_outcome(label: str, wall: float) -> dict[str, Any]:
    """The transient outcome a vanished worker leaves behind — same shape
    and semantics as a dead local pool worker."""
    return {
        "ok": False,
        "transient": True,
        "kind": "crash",
        "error": f"qbss-worker at {label} disconnected mid-task",
        "wall": wall,
    }


class RemoteBackend(Backend):
    """Drive a fleet of ``qbss-worker`` processes over TCP."""

    name = "remote"
    bounded = True

    def __init__(
        self,
        workers: Sequence[str | tuple[str, int]],
        *,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> None:
        if not workers:
            raise ValueError("remote backend needs at least one worker address")
        self.connect_timeout = connect_timeout
        self._entries = list(workers)
        self._links: list[_WorkerLink] | None = None
        self._ids = itertools.count(1)

    # -- lifecycle ------------------------------------------------------------------

    def ensure_open(self) -> None:
        if self._links is None:
            # @FILE entries resolve here, not in __init__, so a backend
            # built before its workers wrote their port files still works.
            addresses = [
                entry if isinstance(entry, tuple) else resolve_worker_address(entry)
                for entry in self._entries
            ]
            self._links = [_WorkerLink(addr) for addr in addresses]
        live = 0
        for link in self._links:
            if link.alive or self._connect(link):
                live += 1
        if live == 0:
            raise BackendBroken(
                f"no live qbss-worker among {len(self._links)} address(es)"
            )

    def _connect(self, link: _WorkerLink) -> bool:
        try:
            sock = socket.create_connection(link.address, timeout=self.connect_timeout)
        except OSError:
            return False
        reader = None
        try:
            reader = sock.makefile("rb")
            hello = recv_frame(reader)
            if (
                hello is None
                or hello.get("kind") != "hello"
                or hello.get("wire_version") != WIRE_VERSION
            ):
                raise ConnectionError(
                    f"bad hello from qbss-worker at {link.label}: {hello!r}"
                )
            sock.settimeout(None)
        except (OSError, ValueError, pickle.UnpicklingError):
            for closable in (reader, sock):
                if closable is not None:
                    try:
                        closable.close()
                    except OSError:  # pragma: no cover - best-effort cleanup
                        pass
            return False
        with link.lock:
            link.sock = sock
            link.reader = reader
            link.alive = True
            link.pinned = False
            link.pending = None
            link.abandoned = set()
        thread = threading.Thread(
            target=self._reader_loop,
            args=(link, sock, reader),
            name=f"qbss-remote-{link.label}",
            daemon=True,
        )
        link.thread = thread
        thread.start()
        return True

    def release(self, kill: bool = False) -> None:
        # Keep idle links warm across batches; drop anything dead, still
        # pinned by a hung task, or (defensively) mid-task.
        for link in self._links or []:
            if not link.alive or link.pinned or link.pending is not None:
                self._fail_link(link, sock=link.sock)

    def close(self, kill: bool = False) -> None:
        for link in self._links or []:
            self._fail_link(link, sock=link.sock)

    # -- the protocol surface -------------------------------------------------------

    def free_slots(self) -> int:
        # Usable capacity: live links not pinned by an abandoned task.
        # (Mirrors the pool's ``jobs - hung``; a link mid-task counts —
        # the driver compares against *total* in-flight tasks.)
        return sum(
            1 for link in self._links or [] if link.alive and not link.pinned
        )

    def submit(
        self,
        fn: Callable[..., dict[str, Any]],
        args: Sequence[Any],
        task: Any | None = None,
    ) -> Future:
        idle = next(
            (
                link
                for link in self._links or []
                if link.alive and not link.pinned and link.pending is None
            ),
            None,
        )
        if idle is None:
            raise BackendBroken("no idle qbss-worker link (fleet dead or pinned)")
        task_id = next(self._ids)
        frame = {
            "kind": "task",
            "id": task_id,
            "fn": worker_fn_spec(fn),
            "args": tuple(args),
            # Forward the active fault plan verbatim: remote workers honor
            # QBSS_FAULT_PLAN exactly like local pool workers, so the same
            # FaultPlan harness verifies them.
            "fault_plan": os.environ.get(FAULT_PLAN_ENV),
            "publish": getattr(task, "publish", None),
        }
        handle: Future = Future()
        with idle.lock:
            sock = idle.sock
            idle.pending = (task_id, handle, time.monotonic())
        try:
            assert sock is not None
            send_frame(sock, frame)
        except (OSError, ValueError):
            # The worker vanished between selection and send: resolve the
            # handle as a crashed attempt (transient — the retry lands on
            # a surviving worker) rather than failing the whole batch.
            self._fail_link(idle, sock=sock)
        return handle

    def result(self, handle: Future) -> dict[str, Any]:
        outcome: dict[str, Any] = handle.result()
        return outcome

    def cancel(self, handle: Future) -> bool:
        for link in self._links or []:
            with link.lock:
                if link.pending is not None and link.pending[1] is handle:
                    # Already on the wire: the worker cannot be preempted.
                    # Pin the link until its stale result drains.
                    link.abandoned.add(link.pending[0])
                    link.pending = None
                    link.pinned = True
                    return False
        return handle.cancel() or handle.done()

    # -- reader side ----------------------------------------------------------------

    def _reader_loop(self, link: _WorkerLink, sock: socket.socket, reader: Any) -> None:
        try:
            self._read_results(link, sock, reader)
        finally:
            # The reader object is closed here, in the only thread that
            # reads from it (see _fail_link); this also releases the
            # last reference to the fd.
            try:
                reader.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def _read_results(
        self, link: _WorkerLink, sock: socket.socket, reader: Any
    ) -> None:
        while True:
            try:
                frame = recv_frame(reader)
            except (OSError, ValueError, pickle.UnpicklingError, EOFError):
                frame = None
            if frame is None:
                self._fail_link(link, sock=sock)
                return
            if frame.get("kind") != "result":
                continue
            task_id = frame.get("id")
            handle: Future | None = None
            started = 0.0
            with link.lock:
                if link.sock is not sock:
                    return  # the link was re-established; this reader is stale
                if task_id in link.abandoned:
                    link.abandoned.discard(task_id)
                    if not link.abandoned:
                        link.pinned = False  # stale results drained; usable again
                    continue
                if link.pending is not None and link.pending[0] == task_id:
                    _tid, handle, started = link.pending
                    link.pending = None
            if handle is None or handle.done():
                continue
            outcome = frame.get("outcome")
            if not isinstance(outcome, dict):
                outcome = _link_crash_outcome(
                    link.label, time.monotonic() - started
                )
            handle.set_result(outcome)

    def _fail_link(self, link: _WorkerLink, sock: socket.socket | None) -> None:
        """Retire a link (idempotent): close the socket, crash-complete
        whatever was in flight.  Safe from driver and reader threads."""
        with link.lock:
            if sock is not None and link.sock is not sock:
                return  # already retired and possibly reconnected
            dead_sock, link.sock = link.sock, None
            link.reader = None
            link.alive = False
            link.pinned = False
            link.abandoned = set()
            pending, link.pending = link.pending, None
        # shutdown() (not just close()) so the worker sees EOF at once —
        # the makefile reader still references the fd, and the reader
        # thread may be blocked inside reader.read(), so this thread must
        # neither close the reader (BufferedReader.close would deadlock on
        # the read lock) nor rely on close() alone to send the FIN.  The
        # reader thread closes its own reader object on the way out.
        if dead_sock is not None:
            try:
                dead_sock.shutdown(socket.SHUT_RDWR)
            except OSError:  # pragma: no cover - already disconnected
                pass
            try:
                dead_sock.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        if pending is not None:
            _tid, handle, started = pending
            if not handle.done():
                handle.set_result(
                    _link_crash_outcome(link.label, time.monotonic() - started)
                )
