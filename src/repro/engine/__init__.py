"""Parallel, cached execution of the experiment registry.

The engine is the execution subsystem behind ``qbss-report``: it fans
:data:`repro.analysis.experiments.REGISTRY` entries out over a process
pool, serves warm re-runs from a content-addressed on-disk cache keyed by
``(experiment, resolved kwargs, package version)``, and reports structured
per-run metrics (wall time, cache hit/miss, row counts).

Quick start::

    from repro.engine import run_experiments

    result = run_experiments(["rho", "lemma42"], jobs=2)
    for run in result.runs:
        print(run.name, run.metrics.wall_time, run.metrics.cache_hit)
    print(result.footer())
"""

from .cache import (
    CACHE_FORMAT_VERSION,
    PruneStats,
    ResultCache,
    cache_key,
    default_cache_dir,
    parse_prune_spec,
)
from .runner import (
    EngineResult,
    ExperimentRun,
    RunMetrics,
    map_measure,
    resolve_jobs,
    run_experiments,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "PruneStats",
    "ResultCache",
    "cache_key",
    "default_cache_dir",
    "parse_prune_spec",
    "EngineResult",
    "ExperimentRun",
    "RunMetrics",
    "map_measure",
    "resolve_jobs",
    "run_experiments",
]
