"""Parallel, cached, fault-tolerant execution of the experiment registry.

The engine is the execution subsystem behind ``qbss-report``: it fans
:data:`repro.analysis.experiments.REGISTRY` entries out over a process
pool, serves warm re-runs from a content-addressed on-disk cache keyed by
``(experiment, resolved kwargs, package version)``, and reports structured
per-run metrics (wall time, cache hit/miss, row counts).

Execution is hardened (``docs/robustness.md``): per-task deadlines,
deterministic retry of transient failures (:class:`RetryPolicy`),
pool-crash recovery with graceful degradation to serial, quarantine of
corrupt cache entries, and a deterministic fault-injection harness
(:class:`FaultPlan`) for proving every recovery path.

Quick start::

    from repro.engine import RetryPolicy, run_experiments

    result = run_experiments(
        ["rho", "lemma42"], jobs=2, task_timeout=300.0,
        retry=RetryPolicy(max_attempts=3),
    )
    for run in result.runs:
        print(run.name, run.metrics.wall_time, run.metrics.cache_hit)
    print(result.footer())
    print(result.summary()["failures"])
"""

from .backends import (
    Backend,
    BackendBroken,
    PoolBackend,
    RemoteBackend,
    SerialBackend,
    create_backend,
    parse_backend_spec,
)
from .cache import (
    CACHE_FORMAT_VERSION,
    QUARANTINE_DIRNAME,
    PruneStats,
    ResultCache,
    cache_key,
    default_cache_dir,
    parse_prune_spec,
)
from .faults import (
    FAULT_PLAN_ENV,
    FailureInfo,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedTransientFault,
    RetryPolicy,
    TransientError,
    WorkerCrashError,
    active_fault_plan,
    installed_fault_plan,
)
from .runner import (
    EngineResult,
    ExecutionStats,
    ExperimentRun,
    HardenedTask,
    RunMetrics,
    execute_hardened,
    map_measure,
    resolve_jobs,
    run_experiments,
)
from .session import UNSET, ExecutionSession, session_from_kwargs

__all__ = [
    "Backend",
    "BackendBroken",
    "PoolBackend",
    "RemoteBackend",
    "SerialBackend",
    "create_backend",
    "parse_backend_spec",
    "CACHE_FORMAT_VERSION",
    "QUARANTINE_DIRNAME",
    "PruneStats",
    "ResultCache",
    "cache_key",
    "default_cache_dir",
    "parse_prune_spec",
    "FAULT_PLAN_ENV",
    "FailureInfo",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedTransientFault",
    "RetryPolicy",
    "TransientError",
    "WorkerCrashError",
    "active_fault_plan",
    "installed_fault_plan",
    "EngineResult",
    "ExecutionStats",
    "ExperimentRun",
    "HardenedTask",
    "RunMetrics",
    "execute_hardened",
    "map_measure",
    "resolve_jobs",
    "run_experiments",
    "UNSET",
    "ExecutionSession",
    "session_from_kwargs",
]
