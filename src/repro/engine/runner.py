"""The parallel cached experiment engine.

:func:`run_experiments` fans registered experiments out over a
``concurrent.futures`` process pool (``jobs > 1``) or runs them inline
(``jobs = 1``), consulting the content-addressed :class:`ResultCache`
first.  Results come back in input order regardless of completion order,
and every run carries :class:`RunMetrics` (wall time, cache hit/miss, row
count) so reports can show where the time went.

Execution is **fault tolerant** (see :mod:`repro.engine.faults` and
``docs/robustness.md``): every task gets an optional deadline
(``task_timeout``) enforced through future timeouts, transient failures
(worker death, cache I/O errors) are retried under a seeded-deterministic
:class:`~repro.engine.faults.RetryPolicy`, a broken process pool is
rebuilt once and then degraded to in-process serial execution, and corrupt
cache entries are quarantined and recomputed.  A run therefore always
completes with whatever results are attainable; what could not be computed
is recorded as a structured :class:`~repro.engine.faults.FailureInfo`.

Reports are *always* normalised through their JSON payload
(``to_dict``/``from_dict``), so a cold run, a warm cache hit and a
``jobs=4`` run all render byte-identically.

:func:`map_measure` is the inner-loop counterpart: it fans per-instance
ratio measurements of a *named* algorithm (dispatched through
:data:`repro.qbss.registry.ALGORITHMS`) over the same kind of pool.
"""

from __future__ import annotations

import heapq
import os
import time
import traceback
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..analysis.experiments import REGISTRY, ExperimentReport, resolve_kwargs

if TYPE_CHECKING:
    from ..analysis.ratios import RatioMeasurement
    from .session import ExecutionSession

#: Sentinel for legacy kwargs: distinguishes "not passed" from an explicit
#: ``None`` so :func:`repro.engine.session.session_from_kwargs` can tell
#: which values should override an explicit session.
_UNSET: Any = object()
from ..core.constants import DEFAULT_ALPHA
from .backends.base import Backend, BackendBroken
from .cache import ResultCache, cache_key
from .faults import (
    FailureInfo,
    FaultPlan,
    RetryPolicy,
    TransientError,
    WorkerCrashError,
    active_fault_plan,
    corrupt_cache_entry,
    installed_fault_plan,
    torn_write_entry,
)


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalize a worker-count request to a concrete positive integer.

    ``"auto"`` (case-insensitive) and ``0`` both mean "one worker per
    CPU" (``os.cpu_count()``); ``None`` means serial.  Negative counts
    and unparsable strings raise :class:`ValueError` — the CLIs convert
    that into an argparse error.
    """
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            return os.cpu_count() or 1
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"--jobs expects a non-negative integer or 'auto', got {text!r}"
            ) from None
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"--jobs must be >= 0, got {jobs}")
    return jobs


# -- the hardened pool driver -------------------------------------------------------


class HardenedTask:
    """Mutable per-task execution state shared with :func:`execute_hardened`.

    Subsystems subclass or wrap this with their own payload fields; the
    driver only touches ``task_key`` (retry/injection coordinates),
    ``attempt`` (1-based), ``walls`` (per-attempt wall times) and the two
    tracing slots (open ``task`` / ``attempt`` span handles, ``None``
    whenever tracing is off or the span is closed).  ``publish`` is an
    advisory cache-publication spec for backends whose workers write the
    result store themselves (the remote work queue); inline and pool
    execution ignore it.
    """

    __slots__ = ("task_key", "attempt", "walls", "span", "attempt_span", "publish")

    def __init__(self, task_key: str) -> None:
        self.task_key = task_key
        self.attempt = 1
        self.walls: list[float] = []
        self.span = None
        self.attempt_span = None
        self.publish: dict[str, Any] | None = None


@dataclass
class ExecutionStats:
    """What the hardened driver did beyond plain execution."""

    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    degraded_tasks: list[str] = field(default_factory=list)


class _PoolBroken(Exception):
    """Internal: the current pool died; rebuild or degrade."""


class _PoolHung(Exception):
    """Internal: every worker is pinned by a timed-out task; replace the pool."""


def _crash_outcome(wall: float) -> dict[str, Any]:
    return {
        "ok": False,
        "transient": True,
        "kind": "crash",
        "error": "worker process died unexpectedly (BrokenProcessPool)",
        "wall": wall,
    }


def _shutdown_pool(pool: ProcessPoolExecutor, kill: bool = False) -> None:
    """Shut a pool down; ``kill`` terminates workers (hung or crashed pools)
    instead of waiting for them — a timed-out task must not block exit."""
    if not kill:
        pool.shutdown(wait=True)
        return
    pool.shutdown(wait=False, cancel_futures=True)
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        try:
            proc.terminate()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
    for proc in procs:
        try:
            proc.join(timeout=1.0)
        except (OSError, ValueError, AssertionError):  # pragma: no cover
            pass


def execute_hardened(
    tasks: Iterable[HardenedTask],
    *,
    worker: Callable[..., dict[str, Any]],
    payload: Callable[[HardenedTask], tuple],
    on_success: Callable[[HardenedTask, dict[str, Any], bool], None],
    on_failure: Callable[[HardenedTask, str, str | None], None],
    jobs: int = 1,
    retry: RetryPolicy | None = None,
    task_timeout: float | None = None,
    max_inflight: int | None = None,
    tracer: Any | None = None,
    trace_parent: Any | None = None,
    backend: Backend | None = None,
) -> ExecutionStats:
    """Run ``tasks`` through ``worker`` with timeouts, retries and recovery.

    ``worker`` is a picklable module-level callable invoked as
    ``worker(*payload(task), task.attempt)`` and returning an *outcome*
    dict: ``{"ok": True, "payload": ..., "wall": s}`` or ``{"ok": False,
    "error": tb, "transient": bool, "kind": str, "wall": s}`` — worker
    bodies capture their own exceptions so the future itself only raises
    on worker *death*.

    Guarantees, in order of escalation:

    * a transient outcome is retried (after the policy's deterministic
      backoff) until ``retry.max_attempts`` is exhausted; backoff never
      blocks dispatch — a retrying task is parked with an eligibility
      time that is folded into the driver's wait, so other completions
      and deadlines are still serviced while it backs off;
    * with ``task_timeout`` set and ``jobs > 1``, submissions are bounded
      to free workers so queue wait never counts against the deadline; a
      task running past its deadline is cancelled, reported as
      ``kind="timeout"`` (never retried — a hang is presumed
      deterministic) and the batch continues.  A running task cannot be
      preempted, so its worker stays pinned to the hang; capacity shrinks
      accordingly, and when every worker is pinned the pool is replaced
      (counted in ``pool_rebuilds``) so the remaining work gets real
      workers again.  Pools that saw a timeout are killed rather than
      joined on shutdown so hung workers cannot block exit;
    * a :class:`BrokenProcessPool` — whether raised at submission or by a
      completed future — marks **every** in-flight task as a crashed
      attempt and rebuilds the pool **once**; if the rebuilt pool breaks
      too, execution degrades to in-process serial with a
      :class:`RuntimeWarning`, so the run always completes with whatever
      results are attainable.  Every task the fallback runs (carried-over
      and not-yet-pulled alike) is flagged ``degraded`` to ``on_success``.

    ``tasks`` may be a lazy iterator (the replay path streams shards);
    ``max_inflight`` bounds how many are pulled before results drain.
    Serial execution (``jobs <= 1``) cannot preempt a running task, so
    ``task_timeout`` is not enforced there.

    ``backend`` selects *where* attempts run (see
    :mod:`repro.engine.backends`): ``None`` keeps the built-in default —
    a hardened local :class:`~repro.engine.backends.local.PoolBackend`
    of ``jobs`` workers for ``jobs > 1``, inline serial execution
    otherwise.  An ``inline`` backend forces the serial path regardless
    of ``jobs``.  Any other backend runs the same driver loop:
    :class:`~repro.engine.backends.base.BackendBroken` plays the role
    :class:`BrokenProcessPool` plays for the pool (rebuild once, then
    degrade), deadline cancellation pins workers through
    :meth:`~repro.engine.backends.base.Backend.cancel`, and submissions
    are bounded by :meth:`~repro.engine.backends.base.Backend.free_slots`
    when a deadline is set or the backend is ``bounded``.

    ``tracer`` (a :class:`repro.obs.Tracer`, optional) records the span
    taxonomy of ``docs/observability.md``: a ``task`` span per task
    (parented to ``trace_parent``), an ``attempt`` span per execution
    attempt, and point events ``retry`` / ``timeout`` / ``pool_rebuild``
    / ``degraded`` at the moments the matching :class:`ExecutionStats`
    counters move — trace counts and footer counts agree by construction.
    Every emission is guarded by ``tracer is not None``, so a disabled
    tracer costs nothing on the hot path.
    """
    retry = retry or RetryPolicy()
    stats = ExecutionStats()
    stream = iter(tasks)

    def begin_task(task: HardenedTask) -> None:
        if tracer is not None and task.span is None:
            task.span = tracer.begin("task", trace_parent, task=task.task_key)

    def begin_attempt(task: HardenedTask) -> None:
        if tracer is not None:
            task.attempt_span = tracer.begin(
                "attempt", task.span, task=task.task_key, attempt=task.attempt
            )

    def close_spans(task: HardenedTask, status: str) -> None:
        """End the open attempt (if any) and the task span with ``status``."""
        if tracer is None:
            return
        if task.attempt_span is not None:
            tracer.end(task.attempt_span, status=status)
            task.attempt_span = None
        if task.span is not None:
            tracer.end(task.span, status=status, attempts=task.attempt)
            task.span = None

    def settle(task: HardenedTask, outcome: dict[str, Any], degraded: bool) -> float | None:
        """Record an outcome; a float return means retry after that delay."""
        task.walls.append(float(outcome.get("wall", 0.0)))
        if outcome["ok"]:
            close_spans(task, "degraded" if degraded else "ok")
            on_success(task, outcome, degraded)
            if degraded:
                stats.degraded_tasks.append(task.task_key)
            return None
        kind = str(outcome.get("kind", "error"))
        if outcome.get("transient") and task.attempt < retry.max_attempts:
            stats.retries += 1
            delay = retry.delay(task.task_key, task.attempt)
            if tracer is not None:
                if task.attempt_span is not None:
                    tracer.end(task.attempt_span, status=kind)
                    task.attempt_span = None
                tracer.event(
                    "retry",
                    task.span,
                    task=task.task_key,
                    attempt=task.attempt,
                    kind=kind,
                    delay=delay,
                )
            task.attempt += 1
            return delay
        close_spans(task, kind)
        on_failure(task, kind, outcome.get("error"))
        return None

    def run_serial(seq: Iterable[HardenedTask], degraded: bool = False) -> None:
        for task in seq:
            begin_task(task)
            while True:
                begin_attempt(task)
                outcome = worker(*payload(task), task.attempt)
                delay = settle(task, outcome, degraded)
                if delay is None:
                    break
                if delay > 0:
                    time.sleep(delay)

    if backend is not None and backend.inline:
        run_serial(stream)
        return stats
    if backend is None:
        if jobs <= 1:
            run_serial(stream)
            return stats
        from .backends.local import PoolBackend

        backend = PoolBackend(jobs)

    carry: deque = deque()  # tasks ready for (re)submission across rebuilds
    retry_heap: list[tuple] = []  # (eligible_at, seq, task) backoff parking lot
    seq = 0
    limit = max_inflight if max_inflight is not None else float("inf")
    crash_rebuilds = 0
    exhausted = False

    def park(task: HardenedTask, delay: float) -> None:
        """Queue a retry; positive delays wait in the heap, not the loop."""
        nonlocal seq
        if delay > 0:
            heapq.heappush(retry_heap, (time.monotonic() + delay, seq, task))
            seq += 1
        else:
            carry.append(task)

    while True:
        try:
            backend.ensure_open()
        except BackendBroken:
            # No capacity reachable at all (e.g. the whole remote fleet is
            # down): same escalation as a backend that broke mid-batch.
            stats.pool_rebuilds += 1
            crash_rebuilds += 1
            if tracer is not None:
                tracer.event("pool_rebuild", trace_parent, reason="broken")
            if crash_rebuilds > 1:
                stats.degraded = True
                break
            continue
        inflight: dict[Any, tuple] = {}
        saw_timeout = False

        def crash_inflight() -> None:
            # The whole backend is dead: every in-flight task is a crashed
            # attempt (attribution is impossible).
            for _fut, (task, _deadline, t0) in list(inflight.items()):
                outcome = _crash_outcome(time.monotonic() - t0)
                delay = settle(task, outcome, False)
                if delay is not None:
                    park(task, delay)
            inflight.clear()

        def submit(task: HardenedTask) -> None:
            begin_task(task)
            t0 = time.monotonic()
            try:
                fut = backend.submit(
                    worker, (*payload(task), task.attempt), task=task
                )
            except BackendBroken:
                carry.appendleft(task)  # no attempt consumed (no attempt span)
                crash_inflight()
                raise _PoolBroken() from None
            begin_attempt(task)
            deadline = None if task_timeout is None else t0 + task_timeout
            inflight[fut] = (task, deadline, t0)

        try:
            while True:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    carry.append(heapq.heappop(retry_heap)[2])
                capacity = limit
                if task_timeout is not None or backend.bounded:
                    # A submitted task must hold a free worker immediately —
                    # under a deadline because queue wait would count
                    # against it, on a bounded backend because there is no
                    # queue to wait in.
                    slots = backend.free_slots()
                    if slots is not None:
                        capacity = min(capacity, slots)
                while len(inflight) < capacity and carry:
                    submit(carry.popleft())
                while len(inflight) < capacity and not exhausted and not carry:
                    try:
                        submit(next(stream))
                    except StopIteration:
                        exhausted = True
                if not inflight:
                    if carry or not exhausted:
                        # Submittable work but zero capacity: every worker
                        # is pinned by a hung task.  Replace the backend.
                        raise _PoolHung()
                    if not retry_heap:
                        break
                    # all remaining work is backing off; fall through and
                    # sleep until the first task is eligible again
                wait_timeout = None
                candidates = [
                    d for (_, d, _) in inflight.values() if d is not None
                ]
                if retry_heap:
                    candidates.append(retry_heap[0][0])
                if candidates:
                    wait_timeout = max(0.0, min(candidates) - time.monotonic())
                done = backend.drain(set(inflight), wait_timeout)
                broken = False
                for fut in done:
                    task, _deadline, t0 = inflight.pop(fut)
                    try:
                        outcome = backend.result(fut)
                    except BackendBroken:
                        broken = True
                        outcome = _crash_outcome(time.monotonic() - t0)
                    delay = settle(task, outcome, False)
                    if delay is not None:
                        park(task, delay)
                if broken:
                    crash_inflight()
                    raise _PoolBroken()
                if task_timeout is not None:
                    now = time.monotonic()
                    expired = [
                        fut
                        for fut, (_task, deadline, _t0) in inflight.items()
                        if deadline is not None and now >= deadline and not fut.done()
                    ]
                    for fut in expired:
                        task, _deadline, t0 = inflight.pop(fut)
                        # cancel() cannot stop a running task: its worker
                        # stays pinned (the backend tracks it and shrinks
                        # free_slots) until the backend is replaced.
                        backend.cancel(fut)
                        saw_timeout = True
                        stats.timeouts += 1
                        task.walls.append(now - t0)
                        if tracer is not None:
                            tracer.event(
                                "timeout",
                                task.span,
                                task=task.task_key,
                                attempt=task.attempt,
                                deadline=task_timeout,
                            )
                        close_spans(task, "timeout")
                        on_failure(
                            task,
                            "timeout",
                            f"task exceeded its {task_timeout}s deadline "
                            f"(attempt {task.attempt})",
                        )
            backend.release(kill=saw_timeout)
            return stats
        except _PoolHung:
            # Not a crash: kill the pinned workers and start fresh.
            # Bounded — each hung task times out exactly once, so at most
            # ceil(timeouts / workers) replacements can ever happen.
            backend.close(kill=True)
            stats.pool_rebuilds += 1
            if tracer is not None:
                tracer.event("pool_rebuild", trace_parent, reason="hung")
        except _PoolBroken:
            backend.close(kill=True)
            stats.pool_rebuilds += 1
            crash_rebuilds += 1
            if tracer is not None:
                tracer.event("pool_rebuild", trace_parent, reason="broken")
            if crash_rebuilds > 1:
                stats.degraded = True
                break
        # loop: reopen the backend and keep going

    backend.close(kill=True)

    if tracer is not None:
        tracer.event("degraded", trace_parent)
    warnings.warn(
        "process pool broke twice; degrading to in-process serial execution "
        "for the remaining tasks",
        RuntimeWarning,
        stacklevel=2,
    )
    while retry_heap:
        carry.append(heapq.heappop(retry_heap)[2])
    run_serial(carry, degraded=True)
    run_serial(stream, degraded=True)
    return stats


# -- engine results -----------------------------------------------------------------


@dataclass(frozen=True)
class RunMetrics:
    """Per-experiment execution metrics."""

    experiment: str
    wall_time: float
    cache_hit: bool
    rows: int
    error: str | None = None
    status: str = "ok"  # ok | degraded | error | crash | timeout
    attempts: int = 1
    quarantined: int = 0
    failure: FailureInfo | None = None


@dataclass
class ExperimentRun:
    """One engine-evaluated experiment: report (or error) + metrics."""

    name: str
    params: dict[str, Any]
    report: ExperimentReport | None
    metrics: RunMetrics

    @property
    def ok(self) -> bool:
        return self.report is not None


@dataclass
class EngineResult:
    """All runs of one engine invocation, in input order."""

    runs: list[ExperimentRun]
    jobs: int
    cache_dir: str | None
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    quarantined: int = 0

    @property
    def reports(self) -> list[ExperimentReport]:
        return [r.report for r in self.runs if r.report is not None]

    @property
    def errors(self) -> list[ExperimentRun]:
        return [r for r in self.runs if not r.ok]

    @property
    def failures(self) -> list[FailureInfo]:
        """Structured failure records, in input order."""
        return [
            r.metrics.failure for r in self.runs if r.metrics.failure is not None
        ]

    @property
    def hits(self) -> int:
        return sum(1 for r in self.runs if r.metrics.cache_hit)

    @property
    def misses(self) -> int:
        return sum(1 for r in self.runs if not r.metrics.cache_hit)

    @property
    def total_wall_time(self) -> float:
        return sum(r.metrics.wall_time for r in self.runs)

    def summary(self) -> dict[str, Any]:
        """The run's health as one JSON-ready dict (CLI + report footers)."""
        return {
            "experiments": len(self.runs),
            "ok": sum(1 for r in self.runs if r.ok),
            "failed": len(self.errors),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded": self.degraded,
            "quarantined": self.quarantined,
            "failures": [f.to_dict() for f in self.failures],
        }

    def footer(self) -> str:
        """The engine-metrics footer appended to CLI reports."""
        lines = [
            "---- engine " + "-" * 46,
            f"{'experiment':<24} {'wall(s)':>9}  {'status':<8} {'rows':>5}",
        ]
        for run in self.runs:
            m = run.metrics
            if m.failure is not None:
                status = m.failure.kind.upper()
            elif m.cache_hit:
                status = "hit"
            elif m.status == "degraded":
                status = "miss*"
            else:
                status = "miss"
            lines.append(
                f"{m.experiment:<24} {m.wall_time:>9.3f}  {status:<8} {m.rows:>5}"
            )
        cache_note = self.cache_dir if self.cache_dir else "disabled"
        lines.append(
            f"total {self.total_wall_time:.3f}s | {self.hits} hit / "
            f"{self.misses} miss | jobs={self.jobs} | cache: {cache_note}"
        )
        if (
            self.retries
            or self.timeouts
            or self.pool_rebuilds
            or self.degraded
            or self.quarantined
        ):
            lines.append(
                f"recovery: {self.retries} retries | {self.timeouts} timeouts "
                f"| {self.pool_rebuilds} pool rebuilds | "
                f"{self.quarantined} quarantined"
                + (" | DEGRADED to serial" if self.degraded else "")
            )
        for fail in self.failures:
            lines.append(f"failed: {fail.summary_line()}")
        return "\n".join(lines)


def _execute(
    name: str,
    call_kwargs: dict[str, Any],
    task: str | None = None,
    attempt: int = 1,
) -> dict[str, Any]:
    """Worker body: run one experiment, return its JSON payload + timing.

    Must stay a module-level function (pickled by name into pool workers).
    Ordinary exceptions are captured into the outcome so one failing
    experiment cannot take down the whole batch; ``BaseException``
    subclasses that are *not* ``Exception`` (``KeyboardInterrupt``,
    ``SystemExit``) are re-raised so Ctrl-C actually stops a run.  Reads
    the :data:`~repro.engine.faults.FAULT_PLAN_ENV` hook first.
    """
    start = time.perf_counter()
    task = task if task is not None else name
    try:
        plan = active_fault_plan()
        if plan is not None:
            plan.inject(task, attempt)
        report = REGISTRY[name](**call_kwargs)
        return {
            "ok": True,
            "payload": report.to_dict(),
            "wall": time.perf_counter() - start,
        }
    except BaseException as exc:
        if not isinstance(exc, Exception):
            raise  # KeyboardInterrupt / SystemExit must propagate
        return {
            "ok": False,
            "error": traceback.format_exc(limit=8),
            "transient": isinstance(exc, TransientError),
            "kind": "crash" if isinstance(exc, WorkerCrashError) else "error",
            "wall": time.perf_counter() - start,
        }


class _ExperimentTask(HardenedTask):
    __slots__ = ("index", "name", "call_kwargs", "resolved", "key", "quarantined")

    def __init__(
        self,
        index: int,
        name: str,
        call_kwargs: dict[str, Any],
        resolved: dict[str, Any],
        key: str,
    ) -> None:
        super().__init__(name)
        self.index = index
        self.name = name
        self.call_kwargs = call_kwargs
        self.resolved = resolved
        self.key = key
        self.quarantined = 0


def _put_with_retry(
    store: ResultCache,
    retry: RetryPolicy,
    task_key: str,
    args: tuple,
) -> Path | None:
    """Cache writes never fail a run: transient I/O errors are retried under
    the policy, then the write is skipped with a warning."""
    attempt = 1
    while True:
        try:
            return store.put(*args)
        except OSError as exc:
            if attempt >= retry.max_attempts:
                warnings.warn(
                    f"cache write for {task_key!r} failed after {attempt} "
                    f"attempt(s) ({exc}); continuing uncached",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return None
            delay = retry.delay(f"{task_key}:cache-put", attempt)
            if delay > 0:
                time.sleep(delay)
            attempt += 1


def run_experiments(
    names: Sequence[str],
    overrides: dict[str, dict] | None = None,
    *,
    session: "ExecutionSession | None" = None,
    jobs: int | str = _UNSET,
    cache: bool = _UNSET,
    cache_dir: str | Path | None = _UNSET,
    package_version: str | None = _UNSET,
    task_timeout: float | None = _UNSET,
    retry: RetryPolicy | None = _UNSET,
    fault_plan: FaultPlan | None = _UNSET,
    tracer: Any | None = _UNSET,
    metrics: Any | None = _UNSET,
    backend: "str | Backend | None" = _UNSET,
) -> EngineResult:
    """Evaluate ``names`` (registry keys), parallel, cached and fault tolerant.

    ``overrides`` maps an experiment name to keyword-argument overrides
    (already validated — see :func:`repro.analysis.experiments.resolve_kwargs`).
    ``session`` (an :class:`~repro.engine.session.ExecutionSession`)
    carries the execution context — pool size, cache, hardening and
    observability — and can be shared across calls (one cache handle, one
    tracer).  The individual kwargs below remain as the legacy spelling:
    without a session they construct one ad hoc (pre-1.2 behaviour);
    combined with an explicit session they are deprecated pass-throughs
    that override its fields for this call.

    ``jobs > 1`` dispatches cache misses to a process pool; hits are served
    in-process; ``jobs=0`` or ``"auto"`` means one worker per CPU (see
    :func:`resolve_jobs`).  ``cache=False`` bypasses the cache entirely (no
    reads, no writes).  ``package_version`` overrides the version component
    of the cache key (tests use this to exercise invalidation).

    Robustness (see ``docs/robustness.md``): ``task_timeout`` puts a
    deadline on each task (pool mode only); ``retry`` is the
    :class:`RetryPolicy` for transient failures (default: 3 attempts);
    ``fault_plan`` installs a deterministic
    :class:`~repro.engine.faults.FaultPlan` for the duration of the run
    (tests; equivalently export ``QBSS_FAULT_PLAN``).

    ``backend`` selects where tasks execute: a spec string (``"serial"``,
    ``"pool"``, ``"remote:HOST:PORT[,HOST:PORT...]"``), a
    :class:`~repro.engine.backends.Backend` instance, or ``None`` for the
    default local pool (see ``docs/backends.md``).

    Observability (``docs/observability.md``): ``tracer`` (a
    :class:`repro.obs.Tracer`) records a ``batch`` span containing
    ``cache-lookup`` / ``task`` / ``attempt`` spans and the recovery point
    events; ``metrics`` (a :class:`repro.obs.MetricsRegistry`) receives
    live ``qbss_cache_*`` series plus the run-level counters.  Both are
    optional, cost nothing when omitted, and never touch report payloads —
    outputs are byte-identical with observability on or off.
    """
    from .session import session_from_kwargs

    # Sessions built here (no caller session) are closed before returning:
    # backend capacity — pool workers, warm remote links — must not outlive
    # the call unless the caller owns the session.
    owns_session = session is None
    session = session_from_kwargs(
        session,
        warn_name="run_experiments",
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        package_version=package_version,
        task_timeout=task_timeout,
        retry=retry,
        fault_plan=fault_plan,
        tracer=tracer,
        metrics=metrics,
        backend=backend,
    )
    jobs = session.pool_jobs
    package_version = session.package_version
    task_timeout = session.task_timeout
    retry = session.retry_policy
    fault_plan = session.fault_plan
    tracer = session.tracer
    metrics = session.metrics
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    store = session.store
    quarantined_before = store.quarantined if store is not None else 0
    tasks: list[_ExperimentTask] = []
    runs: list[ExperimentRun | None] = [None] * len(names)
    batch_span = (
        tracer.begin("batch", experiments=len(names), jobs=jobs)
        if tracer is not None
        else None
    )

    with installed_fault_plan(fault_plan):
        plan = fault_plan if fault_plan is not None else active_fault_plan()

        for i, name in enumerate(names):
            call_kwargs, resolved, _unused = resolve_kwargs(
                name, (overrides or {}).get(name)
            )
            key = cache_key(name, resolved, package_version)
            if store is not None:
                start = time.perf_counter()
                before_q = store.quarantined
                lookup_span = (
                    tracer.begin("cache-lookup", batch_span, task=name)
                    if tracer is not None
                    else None
                )
                entry = store.get(key)
                quarantined = store.quarantined - before_q
                if tracer is not None:
                    for _ in range(quarantined):
                        tracer.event("cache_quarantine", lookup_span, task=name)
                    tracer.end(
                        lookup_span,
                        result="hit" if entry is not None else "miss",
                    )
                if entry is not None:
                    report = ExperimentReport.from_dict(entry["report"])
                    runs[i] = ExperimentRun(
                        name=name,
                        params=resolved,
                        report=report,
                        metrics=RunMetrics(
                            experiment=name,
                            wall_time=time.perf_counter() - start,
                            cache_hit=True,
                            rows=len(report.rows),
                        ),
                    )
                    continue
            else:
                quarantined = 0
            task = _ExperimentTask(i, name, call_kwargs, resolved, key)
            task.quarantined = quarantined
            if store is not None:
                # Remote workers publish straight into the shared result
                # store by digest; local execution ignores the spec (the
                # driver's own on_success write below covers it).
                task.publish = {
                    "key": key,
                    "experiment": name,
                    "params": resolved,
                    "package_version": package_version,
                    "wrap_status": False,
                }
            tasks.append(task)

        def on_success(
            task: _ExperimentTask, outcome: dict[str, Any], degraded: bool
        ) -> None:
            payload = outcome["payload"]
            report = ExperimentReport.from_dict(payload)
            if store is not None:
                path = _put_with_retry(
                    store,
                    retry,
                    task.task_key,
                    (
                        task.key,
                        task.name,
                        task.resolved,
                        payload,
                        outcome["wall"],
                        package_version,
                    ),
                )
                if (
                    path is not None
                    and plan is not None
                    and plan.wants_corrupt_cache(task.task_key, task.attempt)
                ):
                    corrupt_cache_entry(path)
                if (
                    path is not None
                    and plan is not None
                    and plan.wants_torn_write(task.task_key, task.attempt)
                ):
                    torn_write_entry(path)
            metrics = RunMetrics(
                experiment=task.name,
                wall_time=sum(task.walls),
                cache_hit=False,
                rows=len(report.rows),
                status="degraded" if degraded else "ok",
                attempts=task.attempt,
                quarantined=task.quarantined,
            )
            runs[task.index] = ExperimentRun(task.name, task.resolved, report, metrics)

        def on_failure(
            task: _ExperimentTask, kind: str, error: str | None
        ) -> None:
            failure = FailureInfo(
                task=task.task_key,
                kind=kind,
                attempts=task.attempt,
                wall_times=list(task.walls),
                traceback=error,
            )
            metrics = RunMetrics(
                experiment=task.name,
                wall_time=sum(task.walls),
                cache_hit=False,
                rows=0,
                error=error,
                status=kind,
                attempts=task.attempt,
                quarantined=task.quarantined,
                failure=failure,
            )
            runs[task.index] = ExperimentRun(task.name, task.resolved, None, metrics)

        # A single fast task is cheaper inline — unless a deadline needs a
        # pool to be enforceable.
        effective_jobs = jobs
        if len(tasks) <= 1 and task_timeout is None:
            effective_jobs = 1
        stats = session.execute(
            tasks,
            worker=_execute,
            payload=lambda t: (t.name, t.call_kwargs, t.task_key),
            on_success=on_success,
            on_failure=on_failure,
            jobs=min(effective_jobs, max(1, len(tasks))),
            trace_parent=batch_span,
        )

    result = EngineResult(
        runs=[r for r in runs if r is not None],
        jobs=jobs,
        cache_dir=str(store.root) if store is not None else None,
        retries=stats.retries,
        timeouts=stats.timeouts,
        pool_rebuilds=stats.pool_rebuilds,
        degraded=stats.degraded,
        quarantined=(
            store.quarantined - quarantined_before if store is not None else 0
        ),
    )
    if tracer is not None:
        tracer.end(
            batch_span,
            status="degraded" if result.degraded else "ok",
            failures=len(result.failures),
        )
    if metrics is not None:
        from ..obs.publish import publish_engine_result

        publish_engine_result(metrics, result)
    if owns_session:
        session.close()
    return result


# -- per-seed inner loops -------------------------------------------------------------


def _measure_worker(
    algorithm: str, instance_doc: dict, alpha: float, exact_multi: bool
) -> RatioMeasurement:
    from ..analysis.ratios import measure
    from ..io import qbss_instance_from_dict

    return measure(
        algorithm,
        qbss_instance_from_dict(instance_doc),
        alpha=alpha,
        exact_multi=exact_multi,
    )


def map_measure(
    algorithm: str,
    instances: Iterable,
    *,
    alpha: float = DEFAULT_ALPHA,
    jobs: int = 1,
    exact_multi: bool = False,
) -> list:
    """Fan per-instance ratio measurements of a *named* algorithm over a pool.

    The algorithm is dispatched through
    :data:`repro.qbss.registry.ALGORITHMS` inside each worker (names are
    picklable, closures are not); instances travel as their
    :mod:`repro.io` JSON documents.  Results keep the input order.
    """
    from ..io import qbss_instance_to_dict
    from ..qbss.registry import get_algorithm

    get_algorithm(algorithm)  # fail fast on unknown names, in the parent
    docs = [qbss_instance_to_dict(qi) for qi in instances]
    if jobs <= 1 or len(docs) <= 1:
        return [_measure_worker(algorithm, d, alpha, exact_multi) for d in docs]
    with ProcessPoolExecutor(max_workers=min(jobs, len(docs))) as pool:
        futures = [
            pool.submit(_measure_worker, algorithm, d, alpha, exact_multi)
            for d in docs
        ]
        return [f.result() for f in futures]
