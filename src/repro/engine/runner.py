"""The parallel cached experiment engine.

:func:`run_experiments` fans registered experiments out over a
``concurrent.futures`` process pool (``jobs > 1``) or runs them inline
(``jobs = 1``), consulting the content-addressed :class:`ResultCache`
first.  Results come back in input order regardless of completion order,
and every run carries :class:`RunMetrics` (wall time, cache hit/miss, row
count) so reports can show where the time went.

Reports are *always* normalised through their JSON payload
(``to_dict``/``from_dict``), so a cold run, a warm cache hit and a
``jobs=4`` run all render byte-identically.

:func:`map_measure` is the inner-loop counterpart: it fans per-instance
ratio measurements of a *named* algorithm (dispatched through
:data:`repro.qbss.registry.ALGORITHMS`) over the same kind of pool.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..analysis.experiments import REGISTRY, ExperimentReport, resolve_kwargs
from ..core.constants import DEFAULT_ALPHA
from .cache import ResultCache, cache_key


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalize a worker-count request to a concrete positive integer.

    ``"auto"`` (case-insensitive) and ``0`` both mean "one worker per
    CPU" (``os.cpu_count()``); ``None`` means serial.  Negative counts
    and unparsable strings raise :class:`ValueError` — the CLIs convert
    that into an argparse error.
    """
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            return os.cpu_count() or 1
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"--jobs expects a non-negative integer or 'auto', got {text!r}"
            ) from None
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"--jobs must be >= 0, got {jobs}")
    return jobs


@dataclass(frozen=True)
class RunMetrics:
    """Per-experiment execution metrics."""

    experiment: str
    wall_time: float
    cache_hit: bool
    rows: int
    error: Optional[str] = None


@dataclass
class ExperimentRun:
    """One engine-evaluated experiment: report (or error) + metrics."""

    name: str
    params: Dict[str, Any]
    report: Optional[ExperimentReport]
    metrics: RunMetrics

    @property
    def ok(self) -> bool:
        return self.report is not None


@dataclass
class EngineResult:
    """All runs of one engine invocation, in input order."""

    runs: List[ExperimentRun]
    jobs: int
    cache_dir: Optional[str]

    @property
    def reports(self) -> List[ExperimentReport]:
        return [r.report for r in self.runs if r.report is not None]

    @property
    def errors(self) -> List[ExperimentRun]:
        return [r for r in self.runs if not r.ok]

    @property
    def hits(self) -> int:
        return sum(1 for r in self.runs if r.metrics.cache_hit)

    @property
    def misses(self) -> int:
        return sum(1 for r in self.runs if not r.metrics.cache_hit)

    @property
    def total_wall_time(self) -> float:
        return sum(r.metrics.wall_time for r in self.runs)

    def footer(self) -> str:
        """The engine-metrics footer appended to CLI reports."""
        lines = [
            "---- engine " + "-" * 46,
            f"{'experiment':<24} {'wall(s)':>9}  {'cache':<5} {'rows':>5}",
        ]
        for run in self.runs:
            m = run.metrics
            status = "ERROR" if m.error else ("hit" if m.cache_hit else "miss")
            lines.append(
                f"{m.experiment:<24} {m.wall_time:>9.3f}  {status:<5} {m.rows:>5}"
            )
        cache_note = self.cache_dir if self.cache_dir else "disabled"
        lines.append(
            f"total {self.total_wall_time:.3f}s | {self.hits} hit / "
            f"{self.misses} miss | jobs={self.jobs} | cache: {cache_note}"
        )
        return "\n".join(lines)


def _execute(name: str, call_kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Worker body: run one experiment, return its JSON payload + timing.

    Must stay a module-level function (pickled by name into pool workers).
    Exceptions are captured into the result so one failing experiment
    cannot take down the whole batch.
    """
    start = time.perf_counter()
    try:
        report = REGISTRY[name](**call_kwargs)
        return {
            "ok": True,
            "payload": report.to_dict(),
            "wall": time.perf_counter() - start,
        }
    except Exception:
        return {
            "ok": False,
            "error": traceback.format_exc(limit=8),
            "wall": time.perf_counter() - start,
        }


def run_experiments(
    names: Sequence[str],
    overrides: Optional[Dict[str, dict]] = None,
    *,
    jobs: Union[int, str] = 1,
    cache: bool = True,
    cache_dir=None,
    package_version: Optional[str] = None,
) -> EngineResult:
    """Evaluate ``names`` (registry keys), parallel and cached.

    ``overrides`` maps an experiment name to keyword-argument overrides
    (already validated — see :func:`repro.analysis.experiments.resolve_kwargs`).
    ``jobs > 1`` dispatches cache misses to a process pool; hits are served
    in-process; ``jobs=0`` or ``"auto"`` means one worker per CPU (see
    :func:`resolve_jobs`).  ``cache=False`` bypasses the cache entirely (no reads, no
    writes).  ``package_version`` overrides the version component of the
    cache key (tests use this to exercise invalidation).
    """
    jobs = resolve_jobs(jobs)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    store = ResultCache(cache_dir) if cache else None
    plans = []  # (index, name, call_kwargs, resolved, key)
    runs: List[Optional[ExperimentRun]] = [None] * len(names)

    for i, name in enumerate(names):
        call_kwargs, resolved, _unused = resolve_kwargs(
            name, (overrides or {}).get(name)
        )
        key = cache_key(name, resolved, package_version)
        if store is not None:
            start = time.perf_counter()
            entry = store.get(key)
            if entry is not None:
                report = ExperimentReport.from_dict(entry["report"])
                runs[i] = ExperimentRun(
                    name=name,
                    params=resolved,
                    report=report,
                    metrics=RunMetrics(
                        experiment=name,
                        wall_time=time.perf_counter() - start,
                        cache_hit=True,
                        rows=len(report.rows),
                    ),
                )
                continue
        plans.append((i, name, call_kwargs, resolved, key))

    def record(plan, outcome: Dict[str, Any]) -> None:
        i, name, _call_kwargs, resolved, key = plan
        if outcome["ok"]:
            payload = outcome["payload"]
            report = ExperimentReport.from_dict(payload)
            if store is not None:
                store.put(
                    key, name, resolved, payload, outcome["wall"], package_version
                )
            metrics = RunMetrics(
                experiment=name,
                wall_time=outcome["wall"],
                cache_hit=False,
                rows=len(report.rows),
            )
            runs[i] = ExperimentRun(name, resolved, report, metrics)
        else:
            metrics = RunMetrics(
                experiment=name,
                wall_time=outcome["wall"],
                cache_hit=False,
                rows=0,
                error=outcome["error"],
            )
            runs[i] = ExperimentRun(name, resolved, None, metrics)

    if jobs <= 1 or len(plans) <= 1:
        for plan in plans:
            record(plan, _execute(plan[1], plan[2]))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(plans))) as pool:
            futures = {
                pool.submit(_execute, plan[1], plan[2]): plan for plan in plans
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    record(futures[fut], fut.result())

    return EngineResult(
        runs=[r for r in runs if r is not None],
        jobs=jobs,
        cache_dir=str(store.root) if store is not None else None,
    )


# -- per-seed inner loops -------------------------------------------------------------


def _measure_worker(algorithm: str, instance_doc: dict, alpha: float, exact_multi: bool):
    from ..analysis.ratios import measure
    from ..io import qbss_instance_from_dict

    return measure(
        algorithm,
        qbss_instance_from_dict(instance_doc),
        alpha=alpha,
        exact_multi=exact_multi,
    )


def map_measure(
    algorithm: str,
    instances: Iterable,
    *,
    alpha: float = DEFAULT_ALPHA,
    jobs: int = 1,
    exact_multi: bool = False,
) -> List:
    """Fan per-instance ratio measurements of a *named* algorithm over a pool.

    The algorithm is dispatched through
    :data:`repro.qbss.registry.ALGORITHMS` inside each worker (names are
    picklable, closures are not); instances travel as their
    :mod:`repro.io` JSON documents.  Results keep the input order.
    """
    from ..io import qbss_instance_to_dict
    from ..qbss.registry import get_algorithm

    get_algorithm(algorithm)  # fail fast on unknown names, in the parent
    docs = [qbss_instance_to_dict(qi) for qi in instances]
    if jobs <= 1 or len(docs) <= 1:
        return [_measure_worker(algorithm, d, alpha, exact_multi) for d in docs]
    with ProcessPoolExecutor(max_workers=min(jobs, len(docs))) as pool:
        futures = [
            pool.submit(_measure_worker, algorithm, d, alpha, exact_multi)
            for d in docs
        ]
        return [f.result() for f in futures]
